"""Engine-conformance tests for :mod:`repro.engines` (docs/engines.md).

Four layers:

* selection: ``Machine(engine=...)`` / ``REPRO_ENGINE`` / legacy
  ``REPRO_KERNELS`` precedence, and rejection of unknown names;
* transport: shared-memory payload packing round-trips, task registry;
* conformance matrix: every engine runs the full algorithms over several
  graph families and must produce bit-identical simulated seconds, phase
  breakdowns, communication traces and MSF weights -- including ``p=1``
  and graphs so small that PEs sit empty;
* worker lifecycle: ``Machine.reset()`` respawns the pool, a worker
  exception surfaces as :class:`WorkerFailure` carrying the failing PE's
  rank and round, and a SIGKILLed worker produces a clean error rather
  than a driver hang (slow test, timeout-guarded).
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.competitors import awerbuch_shiloach_msf
from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    distributed_boruvka,
    distributed_filter_boruvka,
)
from repro.engines import (
    ENGINE_NAMES,
    BatchedEngine,
    ExecutionEngine,
    InProcessEngine,
    MultiprocessEngine,
    WorkerFailure,
    default_engine_name,
    engine_task,
    make_engine,
    run_task,
    task_names,
)
from repro.engines.shm import pack_payload, payload_nbytes, unpack_payload
from repro.graphgen import gen_family
from repro.obs.export import chrome_trace, metrics_to_dict
from repro.simmpi import Machine

from helpers import random_simple_graph


# ----------------------------------------------------------------------
# Tasks used by the lifecycle tests.  Registered at module import time,
# so fork-started workers inherit them.
# ----------------------------------------------------------------------
@engine_task("_test_engines_echo")
def _echo_task(x):
    """Double the payload (pure; exists to exercise transport paths)."""
    return {"x": x * 2}


@engine_task("_test_engines_fail")
def _fail_task(x, fail_rank):
    """Raise on the designated rank, echo elsewhere."""
    if int(x[0]) == int(fail_rank):
        raise ValueError(f"synthetic failure on rank {int(x[0])}")
    return {"x": x}


def _mp_engine(**kw):
    """A multiprocess engine that always offloads (fork keeps the test
    module's task registry visible in workers)."""
    kw.setdefault("min_offload_bytes", 0)
    kw.setdefault("start_method", "fork")
    return MultiprocessEngine(**kw)


# ----------------------------------------------------------------------
# Selection.
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_engine_names_constant(self):
        assert set(ENGINE_NAMES) == {"inprocess", "batched", "multiprocess"}

    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert default_engine_name() == "batched"
        assert Machine(2).engine.name == "batched"

    def test_legacy_loop_maps_to_inprocess(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.setenv("REPRO_KERNELS", "loop")
        assert default_engine_name() == "inprocess"
        assert Machine(2).engine.name == "inprocess"

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_env_selects_engine(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_ENGINE", name)
        machine = Machine(2)
        assert machine.engine.name == name
        machine.close()

    def test_env_beats_legacy_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "inprocess")
        monkeypatch.setenv("REPRO_KERNELS", "batched")
        assert Machine(2).engine.name == "inprocess"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "multiprocess")
        assert Machine(2, engine="batched").engine.name == "batched"

    def test_instance_passes_through(self):
        eng = InProcessEngine()
        machine = Machine(2, engine=eng)
        assert machine.engine is eng
        assert eng.machine is machine

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "gpu")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            Machine(2)

    def test_unknown_argument_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Machine(2, engine="vectorised")
        with pytest.raises(ValueError):
            make_engine("gpu")

    def test_engine_drives_kernel_dispatch(self):
        from repro.kernels import batched_for

        assert not batched_for(Machine(2, engine="inprocess"))
        assert batched_for(Machine(2, engine="batched"))
        assert batched_for(Machine(2, engine=_mp_engine(workers=0)))
        # Objects without an engine fall back to the env default.
        assert batched_for(object()) == (default_engine_name() != "inprocess")

    def test_machine_is_context_manager(self):
        with Machine(2, engine="batched") as machine:
            assert machine.engine.name == "batched"


# ----------------------------------------------------------------------
# Transport and task registry.
# ----------------------------------------------------------------------
class TestSharedMemoryTransport:
    def test_roundtrip(self):
        payload = {
            "a": np.arange(7, dtype=np.int64),
            "b": np.zeros((3, 2), dtype=np.float64) + 0.5,
            "mask": np.array([True, False, True]),
            "empty": np.empty(0, dtype=np.int64),
            "flag": True,
            "k": 42,
        }
        seg, meta, scalars = pack_payload(payload)
        try:
            out = unpack_payload(seg.buf, meta, scalars)
            for key in ("a", "b", "mask", "empty"):
                assert np.array_equal(out[key], payload[key]), key
                assert out[key].dtype == payload[key].dtype, key
                assert not out[key].flags.writeable
            assert out["flag"] is True
            assert out["k"] == 42
            del out
        finally:
            seg.close()
            seg.unlink()

    def test_payload_nbytes_counts_arrays_only(self):
        payload = {"a": np.arange(8, dtype=np.int64), "flag": False}
        assert payload_nbytes(payload) == 64

    def test_narrowed_payload_roundtrip(self, monkeypatch):
        """Narrowed payloads ship and unpack with their narrow dtype intact.

        The hot-path fan-outs call ``narrow_payload`` at payload-build time
        (docs/kernels.md), so the shared-memory transport must carry the
        ``uint32`` representation -- at half the segment bytes -- and hand
        workers back the same dtype the driver would compute on inline.
        """
        monkeypatch.setenv("REPRO_DTYPES", "narrow")
        from repro.kernels import narrow_payload

        wide = {
            "u": np.arange(100, dtype=np.int64),
            "w": np.array([0, 7, 2**31], dtype=np.int64),
            "signed": np.array([-1, 3], dtype=np.int64),
            "n_key_cols": 2,
        }
        payload = narrow_payload(wide)
        assert payload["u"].dtype == np.uint32
        assert payload["w"].dtype == np.uint32
        # Negative values cannot narrow; the array rides along unchanged.
        assert payload["signed"].dtype == np.int64
        assert payload_nbytes(payload) < payload_nbytes(wide)

        seg, meta, scalars = pack_payload(payload)
        try:
            out = unpack_payload(seg.buf, meta, scalars)
            for key in ("u", "w", "signed"):
                assert out[key].dtype == payload[key].dtype, key
                assert np.array_equal(out[key], wide[key]), key
            assert out["n_key_cols"] == 2
            del out
        finally:
            seg.close()
            seg.unlink()

    def test_narrowed_payload_through_workers(self, monkeypatch):
        """A uint32 payload crossing real worker processes stays uint32."""
        monkeypatch.setenv("REPRO_DTYPES", "narrow")
        from repro.kernels import narrow_payload

        payloads = [narrow_payload({"x": np.arange(50, dtype=np.int64)}),
                    None]
        assert payloads[0]["x"].dtype == np.uint32
        with _mp_engine(workers=1) as eng:
            out = eng.pe_map("_test_engines_echo", payloads)
        assert np.array_equal(out[0]["x"], np.arange(50) * 2)
        assert out[1] is None

    def test_builtin_tasks_registered(self):
        names = task_names()
        assert "minedges" in names
        assert "local_contract" in names

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError, match="unknown engine task"):
            run_task("no_such_task", {})

    def test_base_engine_pe_map_skips_none(self):
        eng = InProcessEngine()
        out = eng.pe_map("_test_engines_echo",
                         [None, {"x": np.array([3])}, None])
        assert out[0] is None and out[2] is None
        assert np.array_equal(out[1]["x"], [6])

    def test_multiprocess_pe_map_matches_inline(self):
        payloads = [None, {"x": np.arange(5)}, {"x": np.arange(2)}]
        ref = InProcessEngine().pe_map("_test_engines_echo", payloads)
        with _mp_engine(workers=1) as eng:
            out = eng.pe_map("_test_engines_echo", payloads)
        assert out[0] is None
        for a, b in zip(ref[1:], out[1:]):
            assert np.array_equal(a["x"], b["x"])


# ----------------------------------------------------------------------
# Conformance matrix: bit-identical simulated behaviour.
# ----------------------------------------------------------------------
ALGOS = [
    ("boruvka", distributed_boruvka, BoruvkaConfig(base_case_min=16)),
    ("filter_boruvka", distributed_filter_boruvka,
     FilterConfig(boruvka=BoruvkaConfig(base_case_min=16))),
    ("awerbuch_shiloach", awerbuch_shiloach_msf, None),
]


def _run_with_engine(engine_spec, graph, p, algo, cfg):
    """One full run; returns every simulated quantity worth comparing."""
    engine = _mp_engine() if engine_spec == "multiprocess" else engine_spec
    with Machine(p, sanitize=True, trace=True, engine=engine) as machine:
        dg = graph.distribute(machine)
        result = algo(dg, cfg)
        return {
            "weight": result.total_weight,
            "clock": machine.clock.copy(),
            "phases": dict(machine.phase_times),
            "phases_per_pe": {k: v.copy()
                              for k, v in machine.phase_times_per_pe.items()},
            "trace": machine.trace.matrix.copy(),
        }


def _assert_engine_conformance(graph, p, algo, cfg):
    out = {name: _run_with_engine(name, graph, p, algo, cfg)
           for name in ENGINE_NAMES}
    a = out["batched"]
    for name in ("inprocess", "multiprocess"):
        b = out[name]
        assert a["weight"] == b["weight"], name
        assert np.array_equal(a["clock"], b["clock"]), (
            f"simulated clocks differ between batched and {name}")
        assert a["phases"] == b["phases"], name
        assert a["phases_per_pe"].keys() == b["phases_per_pe"].keys()
        for k in a["phases_per_pe"]:
            assert np.array_equal(a["phases_per_pe"][k],
                                  b["phases_per_pe"][k]), (name, k)
        assert np.array_equal(a["trace"], b["trace"]), name


class TestEngineConformance:
    @pytest.mark.parametrize("algo_name,algo,cfg", ALGOS,
                             ids=[a[0] for a in ALGOS])
    @pytest.mark.parametrize("family", ["GNM", "2D-GRID", "RHG"])
    def test_families_bit_identical(self, family, algo_name, algo, cfg):
        g = gen_family(family, 250, 1000, seed=11)
        _assert_engine_conformance(g, 6, algo, cfg)

    @pytest.mark.parametrize("algo_name,algo,cfg", ALGOS,
                             ids=[a[0] for a in ALGOS])
    def test_single_pe(self, algo_name, algo, cfg):
        g = gen_family("GNM", 120, 500, seed=5)
        _assert_engine_conformance(g, 1, algo, cfg)

    @pytest.mark.parametrize("algo_name,algo,cfg", ALGOS,
                             ids=[a[0] for a in ALGOS])
    def test_empty_pes(self, algo_name, algo, cfg):
        # Far fewer edges than PEs: several PEs hold no edges at all.
        g = gen_family("GNM", 12, 18, seed=3)
        _assert_engine_conformance(g, 8, algo, cfg)

    def test_raw_edges_input(self):
        from repro.dgraph import DistGraph

        rng = np.random.default_rng(9)
        edges = random_simple_graph(rng, 60, 240)
        outs = {}
        for name in ENGINE_NAMES:
            engine = _mp_engine() if name == "multiprocess" else name
            with Machine(5, sanitize=True, engine=engine) as machine:
                dg = DistGraph.from_global_edges(machine, edges)
                res = distributed_boruvka(dg,
                                          BoruvkaConfig(base_case_min=16))
                outs[name] = (res.total_weight, machine.clock.copy())
        assert outs["batched"][0] == outs["inprocess"][0]
        assert outs["batched"][0] == outs["multiprocess"][0]
        assert np.array_equal(outs["batched"][1], outs["inprocess"][1])
        assert np.array_equal(outs["batched"][1], outs["multiprocess"][1])


class TestDeterminism:
    def _one_export(self):
        with Machine(6, seed=123, trace=True, trace_events=True,
                     engine=_mp_engine()) as machine:
            dg = gen_family("GNM", 300, 1200, seed=7).distribute(machine)
            distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
            trace = json.dumps(
                chrome_trace(machine.events, deterministic=True),
                sort_keys=True)
            metrics = json.dumps(
                metrics_to_dict(machine.metrics, deterministic=True),
                sort_keys=True)
        return trace, metrics

    def test_multiprocess_exports_byte_identical(self):
        first = self._one_export()
        second = self._one_export()
        assert first[0] == second[0], "chrome traces differ between runs"
        assert first[1] == second[1], "metrics dumps differ between runs"

    def test_deterministic_mode_omits_wall_clock(self):
        with Machine(3, trace_events=True, engine="batched") as machine:
            dg = gen_family("GNM", 60, 200, seed=1).distribute(machine)
            distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
            det = chrome_trace(machine.events, deterministic=True)
            full = chrome_trace(machine.events)
            det_m = metrics_to_dict(machine.metrics, deterministic=True)
            full_m = metrics_to_dict(machine.metrics)
        assert not any("wall_s" in ev.get("args", {})
                       for ev in det["traceEvents"])
        assert any("wall_s" in ev.get("args", {})
                   for ev in full["traceEvents"])
        assert not any(k.endswith("/host_seconds") for k in det_m["counters"])
        # The non-deterministic dump keeps them (kernel sink is attached).
        assert set(det_m["counters"]) <= set(full_m["counters"])


# ----------------------------------------------------------------------
# Worker lifecycle.
# ----------------------------------------------------------------------
class TestWorkerLifecycle:
    def test_reset_tears_down_and_respawns_pool(self):
        eng = _mp_engine(workers=1)
        machine = Machine(2, engine=eng)
        pids = eng.worker_pids()
        assert pids and eng._pool is not None
        gen = eng.generation
        machine.reset()
        # Pool is gone after reset; next use respawns a fresh generation.
        assert eng._pool is None
        assert eng.worker_pids()
        assert eng.generation == gen + 1
        machine.close()
        assert eng._pool is None

    def test_worker_exception_carries_rank_and_round(self):
        with _mp_engine(workers=1) as eng:
            eng.note_round(7)
            payloads = [{"x": np.array([r]), "fail_rank": 1}
                        for r in range(3)]
            with pytest.raises(WorkerFailure) as ei:
                eng.pe_map("_test_engines_fail", payloads)
        assert ei.value.pe == 1
        assert ei.value.round_no == 7
        assert "PE 1" in str(ei.value)
        assert "round 7" in str(ei.value)
        assert "ValueError" in str(ei.value)

    def test_inline_exception_carries_rank_and_round(self):
        eng = InProcessEngine()
        eng.note_round(2)
        payloads = [{"x": np.array([r]), "fail_rank": 0} for r in range(2)]
        with pytest.raises(WorkerFailure) as ei:
            eng.pe_map("_test_engines_fail", payloads)
        assert ei.value.pe == 0
        assert ei.value.round_no == 2

    def test_failure_outside_round_loop_says_so(self):
        eng = InProcessEngine()
        with pytest.raises(WorkerFailure, match="outside the round loop"):
            eng.pe_map("_test_engines_fail",
                       [{"x": np.array([0]), "fail_rank": 0}])

    def test_pool_recovers_after_worker_exception(self):
        with _mp_engine(workers=1) as eng:
            with pytest.raises(WorkerFailure):
                eng.pe_map("_test_engines_fail",
                           [{"x": np.array([0]), "fail_rank": 0}])
            # A raised task does not poison the pool: next call works.
            out = eng.pe_map("_test_engines_echo", [{"x": np.array([4])}])
            assert np.array_equal(out[0]["x"], [8])

    def test_machine_reset_after_failure_allows_rerun(self):
        eng = _mp_engine(workers=1)
        machine = Machine(4, engine=eng)
        with pytest.raises(WorkerFailure):
            eng.pe_map("_test_engines_fail",
                       [{"x": np.array([0]), "fail_rank": 0}])
        machine.reset()
        dg = gen_family("GNM", 80, 300, seed=2).distribute(machine)
        res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
        assert res.total_weight > 0
        machine.close()

    @pytest.mark.slow
    def test_killed_worker_surfaces_cleanly_not_hang(self):
        """A SIGKILLed worker must raise WorkerFailure, never deadlock."""
        def _alarm(signum, frame):
            raise TimeoutError("driver hung after worker kill")

        old = signal.signal(signal.SIGALRM, _alarm)
        signal.alarm(120)  # hard guard: fail loudly instead of hanging CI
        try:
            eng = _mp_engine(workers=1, timeout=60)
            try:
                for pid in eng.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                with pytest.raises(WorkerFailure) as ei:
                    eng.pe_map("_test_engines_echo",
                               [{"x": np.arange(64)}])
                assert "worker" in str(ei.value)
                # The pool was torn down; a fresh one serves new work.
                out = eng.pe_map("_test_engines_echo",
                                 [{"x": np.array([1])}])
                assert np.array_equal(out[0]["x"], [2])
            finally:
                eng.close()
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old)


class TestEngineUnderSubsystems:
    def test_sanitizer_active_under_multiprocess(self):
        # sanitize=True in the conformance runs already proves clean runs
        # pass; here a corrupted exchange must still be detected.
        from repro.simmpi.sanitizer import CostAccountingViolation

        with Machine(4, sanitize=True, engine=_mp_engine()) as machine:
            dg = gen_family("GNM", 100, 400, seed=6).distribute(machine)
            machine.sanitizer.check_two_level(4, 10, [9, 10], [2, 2])
            with pytest.raises(CostAccountingViolation):
                machine.sanitizer.check_two_level(4, 10, [15, 10], [2, 2])
            del dg

    def test_faults_identical_across_engines(self):
        spec = "seed=5,msg_drop=0.02"
        outs = {}
        for name in ENGINE_NAMES:
            engine = _mp_engine() if name == "multiprocess" else name
            with Machine(5, faults=spec, engine=engine) as machine:
                dg = gen_family("GNM", 150, 600, seed=4).distribute(machine)
                res = distributed_boruvka(dg,
                                          BoruvkaConfig(base_case_min=16))
                outs[name] = (res.total_weight, machine.clock.copy())
        assert outs["batched"][0] == outs["inprocess"][0]
        assert outs["batched"][0] == outs["multiprocess"][0]
        assert np.array_equal(outs["batched"][1], outs["inprocess"][1])
        assert np.array_equal(outs["batched"][1], outs["multiprocess"][1])
