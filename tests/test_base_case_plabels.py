"""Tests for the replicated base case and the distributed P array
(repro.core.base_case, repro.core.plabels)."""

import numpy as np
import pytest

from repro.core import BoruvkaConfig, DistributedLabelArray, MSTRun, base_case
from repro.dgraph import DistGraph, Edges
from repro.seq import UnionFind, kruskal_msf
from repro.simmpi import Comm, Machine

from helpers import random_simple_graph


class TestBaseCase:
    @pytest.mark.parametrize("p", [1, 2, 5, 9])
    def test_matches_kruskal_weight(self, p, rng):
        g = random_simple_graph(rng, 30, 120)
        machine = Machine(p)
        dg = DistGraph.from_global_edges(machine, g)
        run = MSTRun(machine, BoruvkaConfig())
        base_case(dg, run)
        total = 0
        n = 30
        uf = UnionFind(n)
        for i in range(p):
            for eid, w in run.collected(i):
                pos = int(np.flatnonzero(g.id == eid)[0])
                assert uf.union(int(g.u[pos]), int(g.v[pos]))
                total += int(w)
        assert total == kruskal_msf(g, n).total_weight()

    def test_empty_graph_is_noop(self):
        machine = Machine(3)
        dg = DistGraph(machine, [Edges.empty()] * 3)
        run = MSTRun(machine, BoruvkaConfig())
        assert base_case(dg, run) is None
        assert run.total_mst_edges() == 0

    def test_returns_component_map(self, rng):
        g = random_simple_graph(rng, 20, 60)
        machine = Machine(2)
        dg = DistGraph.from_global_edges(machine, g)
        run = MSTRun(machine, BoruvkaConfig())
        out = base_case(dg, run)
        assert out is not None
        labels, reps = out
        # reps define the same partition as the graph's components.
        uf = UnionFind(20)
        uf.union_edges(g.u, g.v)
        for a in range(len(labels)):
            for b in range(len(labels)):
                same_graph = uf.connected(int(labels[a]), int(labels[b]))
                assert same_graph == (reps[a] == reps[b])

    def test_label_sink_observes_contractions(self, rng):
        g = random_simple_graph(rng, 20, 80)
        machine = Machine(2)
        dg = DistGraph.from_global_edges(machine, g)
        run = MSTRun(machine, BoruvkaConfig())
        events = []
        run.label_sink = lambda pe, vs, ls: events.append((vs.copy(),
                                                           ls.copy()))
        base_case(dg, run)
        assert events, "contractions must be reported"


class TestDistributedLabelArray:
    def test_identity_by_default(self):
        comm = Comm(Machine(4))
        P = DistributedLabelArray(comm, 20)
        out = P.request([np.array([3, 17]), np.array([0]),
                         np.empty(0, dtype=np.int64), np.array([19])])
        assert list(out[0]) == [3, 17]
        assert list(out[3]) == [19]

    def test_updates_and_chain_contraction(self):
        comm = Comm(Machine(4))
        P = DistributedLabelArray(comm, 16)
        # Chain: 0 -> 5 -> 10 -> 15 recorded as separate contractions.
        P.sink(0, np.array([0]), np.array([5]))
        P.sink(1, np.array([5]), np.array([10]))
        P.sink(2, np.array([10]), np.array([15]))
        P.contract()
        out = P.request([np.array([0, 5, 10, 15])] + [np.empty(0, dtype=np.int64)] * 3)
        assert list(out[0]) == [15, 15, 15, 15]

    def test_random_chains_resolve(self, rng):
        n, p = 60, 5
        comm = Comm(Machine(p))
        P = DistributedLabelArray(comm, n)
        # A random forest of pointers (acyclic by construction: to higher id).
        parent = {}
        for v in range(n - 1):
            if rng.random() < 0.6:
                target = int(rng.integers(v + 1, n))
                parent[v] = target
                P.sink(int(rng.integers(0, p)), np.array([v]),
                       np.array([target]))
        P.contract()

        def resolve(v):
            while v in parent:
                v = parent[v]
            return v

        queries = rng.integers(0, n, 30)
        out = P.request([queries] + [np.empty(0, dtype=np.int64)] * (p - 1))
        expect = [resolve(int(q)) for q in queries]
        assert list(out[0]) == expect

    def test_assembled_diagnostic(self):
        comm = Comm(Machine(3))
        P = DistributedLabelArray(comm, 7)
        assert np.array_equal(P.assembled(), np.arange(7))

    def test_flush_without_updates_is_safe(self):
        comm = Comm(Machine(2))
        P = DistributedLabelArray(comm, 5)
        P.flush()
        P.contract()
        assert np.array_equal(P.assembled(), np.arange(5))


@pytest.fixture
def rng():
    return np.random.default_rng(61)
