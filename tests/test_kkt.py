"""Tests for the KKT linear-time MST and its forest-path oracle
(repro.seq.kkt)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dgraph import Edges
from repro.seq import (
    NO_PATH,
    boruvka_round,
    kkt_msf,
    kruskal_msf,
    max_weight_on_paths,
    verify_msf,
)

from helpers import random_simple_graph


def _naive_path_max(forest: Edges, n: int, a: int, b: int) -> int:
    """Reference: DFS for the path max weight (NO_PATH if disconnected)."""
    adj = {v: [] for v in range(n)}
    for k in range(len(forest)):
        adj[int(forest.u[k])].append((int(forest.v[k]), int(forest.w[k])))
        adj[int(forest.v[k])].append((int(forest.u[k]), int(forest.w[k])))
    if a == b:
        return 0
    stack = [(a, -1, 0)]
    while stack:
        x, prev, best = stack.pop()
        for y, w in adj[x]:
            if y == prev:
                continue
            nb = max(best, w)
            if y == b:
                return nb
            stack.append((y, x, nb))
    return int(NO_PATH)


class TestPathOracle:
    def test_matches_naive_on_random_forests(self, rng):
        n = 40
        for trial in range(5):
            g = random_simple_graph(rng, n, 3 * n)
            forest = kruskal_msf(g, n)
            qu = rng.integers(0, n, 50)
            qv = rng.integers(0, n, 50)
            got = max_weight_on_paths(forest, n, qu, qv)
            for k in range(50):
                expect = _naive_path_max(forest, n, int(qu[k]), int(qv[k]))
                assert got[k] == expect, (trial, qu[k], qv[k])

    def test_same_vertex_is_zero(self, rng):
        g = random_simple_graph(rng, 20, 40)
        forest = kruskal_msf(g, 20)
        out = max_weight_on_paths(forest, 20, np.array([5]), np.array([5]))
        assert out[0] == 0

    def test_disconnected_pairs(self):
        forest = Edges(np.array([0]), np.array([1]), np.array([7]))
        out = max_weight_on_paths(forest, 4, np.array([0, 2]),
                                  np.array([1, 3]))
        assert out[0] == 7
        assert out[1] == NO_PATH

    def test_path_graph_prefix_maxima(self):
        n = 16
        u = np.arange(n - 1)
        w = np.array([3, 1, 9, 2, 5, 4, 8, 1, 2, 7, 6, 1, 2, 3, 4])
        forest = Edges(u, u + 1, w)
        qu = np.zeros(n - 1, dtype=np.int64)
        qv = np.arange(1, n)
        out = max_weight_on_paths(forest, n, qu, qv)
        assert np.array_equal(out, np.maximum.accumulate(w))

    def test_empty_forest(self):
        out = max_weight_on_paths(Edges.empty(), 5, np.array([1]),
                                  np.array([2]))
        assert out[0] == NO_PATH


class TestBoruvkaRound:
    def test_halves_components(self, rng):
        n = 64
        g = random_simple_graph(rng, n, 4 * n)
        labels = np.arange(n)
        chosen, new_labels = boruvka_round(g, labels)
        n_before = len(np.unique(labels[np.unique(g.u)]))
        n_after = len(np.unique(new_labels[np.unique(g.u)]))
        assert n_after <= n_before / 2 + 1

    def test_chosen_edges_acyclic(self, rng):
        from repro.seq import UnionFind

        n = 50
        g = random_simple_graph(rng, n, 4 * n)
        chosen, _ = boruvka_round(g, np.arange(n))
        uf = UnionFind(n)
        for pos in chosen:
            assert uf.union(int(g.u[pos]), int(g.v[pos]))

    def test_no_alive_edges(self):
        g = Edges(np.array([0]), np.array([1]), np.array([5]))
        labels = np.zeros(2, dtype=np.int64)  # already same component
        chosen, out = boruvka_round(g, labels)
        assert len(chosen) == 0
        assert np.array_equal(out, labels)


class TestKKT:
    @pytest.mark.parametrize("trial", range(6))
    def test_matches_kruskal(self, trial):
        rng = np.random.default_rng(trial)
        n = int(rng.integers(10, 120))
        g = random_simple_graph(rng, n, 6 * n)
        if len(g) == 0:
            return
        msf = kkt_msf(g, n, rng=np.random.default_rng(trial + 1000),
                      base_case_size=16)
        verify_msf(msf, g, n, check_edges=False)

    def test_dense_graph(self, rng):
        n = 40
        g = random_simple_graph(rng, n, 20 * n)
        msf = kkt_msf(g, n, base_case_size=16)
        verify_msf(msf, g, n, check_edges=False)

    def test_disconnected(self, rng):
        a = random_simple_graph(rng, 20, 60)
        b = random_simple_graph(rng, 20, 60)
        g = Edges.concat([a, Edges(b.u + 20, b.v + 20, b.w)]).sort_lex()
        msf = kkt_msf(g, 40, base_case_size=8)
        verify_msf(msf, g, 40, check_edges=False)

    def test_empty(self):
        assert len(kkt_msf(Edges.empty(), 5)) == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 50), st.integers(0, 10 ** 6))
    def test_weight_property(self, n, seed):
        rng = np.random.default_rng(seed)
        g = random_simple_graph(rng, n, 5 * n)
        if len(g) == 0:
            return
        msf = kkt_msf(g, n, rng=np.random.default_rng(seed + 1),
                      base_case_size=8)
        assert msf.total_weight() == kruskal_msf(g, n).total_weight()


@pytest.fixture
def rng():
    return np.random.default_rng(139)
