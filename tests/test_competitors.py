"""Tests for the competitor reimplementations (repro.competitors)."""

import numpy as np
import pytest

from repro.competitors import mnd_mst, shared_memory_msf
from repro.competitors.awerbuch_shiloach import awerbuch_shiloach_msf
from repro.competitors.mnd_mst import _VertexMap
from repro.core import BoruvkaConfig
from repro.dgraph import DistGraph
from repro.graphgen import FAMILIES, gen_family
from repro.seq import kruskal_msf, verify_msf
from repro.simmpi import Machine, SimulatedOutOfMemory

from helpers import random_simple_graph


class TestAwerbuchShiloach:
    @pytest.mark.parametrize("p", [1, 2, 5, 9, 16])
    def test_matches_kruskal(self, p, rng):
        n = int(rng.integers(10, 80))
        g = random_simple_graph(rng, n, 5 * n)
        dg = DistGraph.from_global_edges(Machine(p), g)
        res = awerbuch_shiloach_msf(dg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.algorithm == "sparseMatrix"

    @pytest.mark.parametrize("family", FAMILIES)
    def test_families(self, family):
        g = gen_family(family, 300, 1200, seed=11)
        dg = g.distribute(Machine(8))
        res = awerbuch_shiloach_msf(dg)
        verify_msf(res.msf_edges(), g.edges, g.n_vertices,
                   check_edges=False)

    def test_no_contraction_means_slow_iterations(self, rng):
        """The edge set never shrinks: simulated time far exceeds ours."""
        from repro.core import distributed_boruvka

        g = gen_family("2D-GRID", 1024, 2048, seed=12)
        m1, m2 = Machine(16), Machine(16)
        r_ours = distributed_boruvka(g.distribute(m1),
                                     BoruvkaConfig(base_case_min=64))
        r_as = awerbuch_shiloach_msf(g.distribute(m2))
        assert r_as.elapsed > 3 * r_ours.elapsed

    def test_memory_limit_triggers_oom(self, rng):
        g = random_simple_graph(rng, 200, 2000)
        machine = Machine(4)
        dg = DistGraph.from_global_edges(machine, g)
        machine.memory_limit_bytes = 10_000  # tensor buffers exceed this
        with pytest.raises(SimulatedOutOfMemory):
            awerbuch_shiloach_msf(dg)


class TestMndMst:
    @pytest.mark.parametrize("p", [1, 2, 5, 9, 16])
    def test_matches_kruskal(self, p, rng):
        n = int(rng.integers(10, 80))
        g = random_simple_graph(rng, n, 5 * n)
        dg = DistGraph.from_global_edges(Machine(p), g)
        res = mnd_mst(dg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.algorithm == "MND-MST"

    @pytest.mark.parametrize("family", FAMILIES)
    def test_families(self, family):
        g = gen_family(family, 300, 1200, seed=13)
        dg = g.distribute(Machine(8))
        res = mnd_mst(dg)
        verify_msf(res.msf_edges(), g.edges, g.n_vertices,
                   check_edges=False)

    def test_group_size_variants(self, rng):
        g = random_simple_graph(rng, 60, 400)
        for group_size in (2, 4, 16):
            dg = DistGraph.from_global_edges(Machine(9), g)
            res = mnd_mst(dg, group_size=group_size)
            verify_msf(res.msf_edges(), g, 60, check_edges=False)

    def test_shared_vertices_handled(self, rng):
        # A star graph forces shared hubs under block partitioning.
        n = 60
        hub = np.zeros(n - 1, dtype=np.int64)
        leaves = np.arange(1, n, dtype=np.int64)
        w = rng.integers(1, 255, n - 1)
        from repro.dgraph import Edges

        g = Edges(np.concatenate([hub, leaves]),
                  np.concatenate([leaves, hub]),
                  np.concatenate([w, w])).sort_lex()
        g.id[:] = np.arange(len(g))
        dg = DistGraph.from_global_edges(Machine(6), g)
        res = mnd_mst(dg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)

    def test_leader_memory_concentration_ooms(self, rng):
        g = gen_family("GNM", 256, 2048, seed=14)
        machine = Machine(16)
        dg = g.distribute(machine)
        machine.memory_limit_bytes = 20_000  # leaders accumulate past this
        with pytest.raises(SimulatedOutOfMemory):
            mnd_mst(dg)

    def test_skew_causes_load_imbalance(self):
        """RMAT (skewed) costs MND-MST far more than ours (Section VII-A)."""
        from repro.core import distributed_boruvka

        g = gen_family("RMAT", 1024, 8192, seed=15)
        m1, m2 = Machine(16), Machine(16)
        r_ours = distributed_boruvka(g.distribute(m1),
                                     BoruvkaConfig(base_case_min=64))
        r_mnd = mnd_mst(g.distribute(m2))
        assert r_mnd.elapsed > 1.5 * r_ours.elapsed


class TestVertexMap:
    def test_chain_resolution(self):
        vm = _VertexMap()
        vm.add(np.array([1, 2]), np.array([2, 3]))
        out = vm.resolve(np.array([1, 2, 3, 9]))
        assert list(out) == [3, 3, 3, 9]

    def test_merge_rows(self):
        vm = _VertexMap()
        vm.add(np.array([5]), np.array([6]))
        vm.merge(np.array([[6, 7]]))
        assert list(vm.resolve(np.array([5]))) == [7]

    def test_empty_resolve(self):
        vm = _VertexMap()
        out = vm.resolve(np.array([3, 1]))
        assert list(out) == [3, 1]


class TestSharedMemoryReference:
    def test_correct_msf(self, rng):
        g = random_simple_graph(rng, 100, 800)
        sm = shared_memory_msf(g, 100)
        verify_msf(sm.msf, g, 100, check_edges=False)

    def test_more_cores_is_faster(self, rng):
        g = random_simple_graph(rng, 100, 800)
        t32 = shared_memory_msf(g, 100, cores=32).elapsed
        t128 = shared_memory_msf(g, 100, cores=128).elapsed
        assert t128 < t32

    def test_amdahl_floor(self, rng):
        g = random_simple_graph(rng, 100, 800)
        t_huge = shared_memory_msf(g, 100, cores=10 ** 6).elapsed
        assert t_huge > 0  # the serial fraction bounds the speedup


@pytest.fixture
def rng():
    return np.random.default_rng(101)
