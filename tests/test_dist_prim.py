"""Tests for the replicated-vertex distributed Prim
(repro.competitors.dist_prim)."""

import numpy as np
import pytest

from repro.competitors import dist_prim
from repro.core import BoruvkaConfig, distributed_boruvka
from repro.dgraph import DistGraph, Edges
from repro.graphgen import gen_family
from repro.seq import verify_msf
from repro.simmpi import Machine

from helpers import random_distinct_weight_graph, random_simple_graph


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 9])
    def test_matches_kruskal(self, p, rng):
        n = int(rng.integers(10, 60))
        g = random_simple_graph(rng, n, 4 * n)
        dg = DistGraph.from_global_edges(Machine(p), g)
        res = dist_prim(dg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.algorithm == "dist-prim"

    def test_identical_edges_with_distinct_weights(self, rng):
        n = 40
        g = random_distinct_weight_graph(rng, n, 3 * n)
        dg = DistGraph.from_global_edges(Machine(5), g)
        res = dist_prim(dg)
        verify_msf(res.msf_edges(), g, n, check_edges=True)

    def test_disconnected_forest(self, rng):
        a = random_simple_graph(rng, 12, 40)
        b = random_simple_graph(rng, 12, 40)
        g = Edges.concat([a, Edges(b.u + 12, b.v + 12, b.w)]).sort_lex()
        g.id[:] = np.arange(len(g))
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = dist_prim(dg)
        verify_msf(res.msf_edges(), g, 24, check_edges=False)

    def test_empty_graph(self):
        dg = DistGraph(Machine(3), [Edges.empty()] * 3)
        res = dist_prim(dg)
        assert res.total_weight == 0


class TestScalingCharacter:
    def test_linear_round_count_dominates(self):
        """Theta(n) collectives: the latency share grows with n, unlike
        Borůvka's logarithmic round count (the reason [24] stops at 16
        cores)."""
        times = {}
        for n_scale in (1, 2):
            g = gen_family("GNM", 128 * n_scale, 512 * n_scale, seed=24)
            m1, m2 = Machine(8), Machine(8)
            t_prim = dist_prim(g.distribute(m1)).elapsed
            t_boruvka = distributed_boruvka(
                g.distribute(m2), BoruvkaConfig(base_case_min=32)).elapsed
            times[n_scale] = t_prim / t_boruvka
        assert times[1] > 1.0, "Prim should already lose at small n"
        assert times[2] > times[1], "and fall further behind as n grows"


@pytest.fixture
def rng():
    return np.random.default_rng(173)
