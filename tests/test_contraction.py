"""Tests for component contraction / pointer doubling (repro.core.contraction)."""

import numpy as np
import pytest

from repro.core import BoruvkaConfig, MSTRun, contract_components, min_edges
from repro.dgraph import DistGraph, Edges
from repro.seq import UnionFind, kruskal_msf
from repro.simmpi import Machine

from helpers import random_simple_graph


def _run_contraction(g, p, alltoall="auto"):
    machine = Machine(p)
    dg = DistGraph.from_global_edges(machine, g)
    run = MSTRun(machine, BoruvkaConfig(alltoall=alltoall))
    chosen = min_edges(dg)
    labels = contract_components(dg, chosen, run)
    return dg, run, chosen, labels


class TestContraction:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    @pytest.mark.parametrize("alltoall", ["direct", "grid", "hypercube"])
    def test_labels_are_fixpoints(self, p, alltoall, rng):
        """Every label must map to itself (roots of stars)."""
        g = random_simple_graph(rng, 40, 160)
        dg, run, chosen, labels = _run_contraction(g, p, alltoall)
        # Build global vertex -> label map (shared vertices map to self).
        global_map = {}
        for i in range(p):
            for v, l in zip(chosen[i].vids, labels[i]):
                global_map[int(v)] = int(l)
        for v, l in global_map.items():
            assert global_map.get(l, l) == l, (v, l)

    def test_chosen_edges_connect_vertex_to_label_component(self, rng):
        """u and L(u) must be connected via selected MST edges."""
        g = random_simple_graph(rng, 30, 120)
        p = 4
        dg, run, chosen, labels = _run_contraction(g, p)
        n = int(max(g.u.max(), g.v.max())) + 1
        uf = UnionFind(n)
        for i in range(p):
            rec = run.collected(i)
            for eid, w in rec:
                pos = np.flatnonzero(g.id == eid)[0]
                uf.union(int(g.u[pos]), int(g.v[pos]))
        for i in range(p):
            for v, l in zip(chosen[i].vids, labels[i]):
                assert uf.connected(int(v), int(l)), (v, l)

    def test_recorded_edges_form_forest(self, rng):
        g = random_simple_graph(rng, 50, 300)
        p = 5
        dg, run, chosen, labels = _run_contraction(g, p)
        n = int(max(g.u.max(), g.v.max())) + 1
        uf = UnionFind(n)
        total = 0
        for i in range(p):
            for eid, w in run.collected(i):
                pos = np.flatnonzero(g.id == eid)[0]
                assert uf.union(int(g.u[pos]), int(g.v[pos])), "cycle!"
                total += 1
        assert total > 0

    def test_recorded_edges_are_mst_edges(self, rng):
        """Every recorded edge belongs to some MSF (weight check)."""
        g = random_simple_graph(rng, 25, 100)
        p = 3
        dg, run, chosen, labels = _run_contraction(g, p)
        ref_ids_weights = {}
        msf = kruskal_msf(g, 25)
        # Recorded weights must sum <= MSF weight (subset of a valid MSF
        # would require the tie-aware check; compare per-edge weights via
        # the exchange argument instead: recorded forest + completion has
        # exactly the MSF weight).
        n = 25
        uf = UnionFind(n)
        recorded_weight = 0
        for i in range(p):
            for eid, w in run.collected(i):
                pos = np.flatnonzero(g.id == eid)[0]
                uf.union(int(g.u[pos]), int(g.v[pos]))
                recorded_weight += int(w)
        # Complete greedily with Kruskal on the remaining components.
        order = g.weight_order()
        srt = g.take(order)
        for k in range(len(srt)):
            if uf.union(int(srt.u[k]), int(srt.v[k])):
                recorded_weight += int(srt.w[k])
        assert recorded_weight == msf.total_weight()

    def test_two_cycle_tie_break(self):
        # Two vertices, one edge: 0 and 1 choose each other; smaller wins.
        g = Edges(np.array([0, 1]), np.array([1, 0]), np.array([5, 5]))
        g = g.sort_lex()
        g.id[:] = np.arange(2)
        dg, run, chosen, labels = _run_contraction(g, 1)
        assert labels[0][0] == 0 and labels[0][1] == 0
        # Exactly one MST edge recorded.
        assert len(run.collected(0)) == 1

    def test_shared_vertices_are_roots(self, rng):
        g = random_simple_graph(rng, 40, 400)
        p = 6
        dg, run, chosen, labels = _run_contraction(g, p)
        shared = set(dg.shared_vertex_set().tolist())
        for i in range(p):
            for v, l in zip(chosen[i].vids, labels[i]):
                if int(v) in shared:
                    assert int(l) == int(v)


@pytest.fixture
def rng():
    return np.random.default_rng(41)
