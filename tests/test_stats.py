"""Tests for instance statistics (repro.graphgen.stats)."""

import numpy as np
import pytest

from repro.dgraph import Edges
from repro.graphgen import (
    degree_gini,
    gen_family,
    gen_grid2d,
    graph_statistics,
    locality_fraction,
)


class TestDegreeGini:
    def test_regular_is_zero(self):
        assert degree_gini(np.full(100, 4)) == pytest.approx(0.0)

    def test_single_hub_near_one(self):
        deg = np.zeros(1000)
        deg[0] = 10_000
        assert degree_gini(deg) > 0.95

    def test_empty(self):
        assert degree_gini(np.empty(0)) == 0.0

    def test_scale_invariant(self):
        d = np.array([1, 2, 3, 4, 10])
        assert degree_gini(d) == pytest.approx(degree_gini(d * 7))

    def test_family_ordering(self):
        """Grid < GNM < RMAT in degree skew (the paper's family taxonomy)."""
        ginis = {}
        for fam in ("2D-GRID", "GNM", "RMAT"):
            g = gen_family(fam, 1024, 4096, seed=3)
            deg = np.bincount(g.edges.u, minlength=g.n_vertices)
            ginis[fam] = degree_gini(deg[deg > 0])
        assert ginis["2D-GRID"] < ginis["GNM"] < ginis["RMAT"]


class TestLocalityFraction:
    def test_grid_is_local(self):
        g = gen_grid2d(32, 32, seed=1)
        assert locality_fraction(g.edges, 4) > 0.8

    def test_gnm_is_nonlocal(self):
        g = gen_family("GNM", 2048, 8192, seed=1)
        assert locality_fraction(g.edges, 16) < 0.2

    def test_single_part_fully_local(self):
        g = gen_family("GNM", 256, 1024, seed=1)
        assert locality_fraction(g.edges, 1) == 1.0

    def test_empty_edges(self):
        assert locality_fraction(Edges.empty(), 4) == 1.0

    def test_more_parts_less_local(self):
        g = gen_grid2d(32, 32, seed=1)
        f4 = locality_fraction(g.edges, 4)
        f64 = locality_fraction(g.edges, 64)
        assert f64 < f4


class TestGraphStatistics:
    def test_from_generated_graph(self):
        g = gen_family("RMAT", 512, 2048, seed=2)
        s = graph_statistics(g)
        assert s.n_vertices == g.n_vertices
        assert s.m_undirected == g.n_undirected_edges
        assert 1 <= s.weight_min <= s.weight_max < 255
        assert "gini" in s.summary()

    def test_from_raw_edges_requires_n(self):
        e = Edges(np.array([0, 1]), np.array([1, 0]), np.array([3, 3]))
        with pytest.raises(ValueError):
            graph_statistics(e)
        s = graph_statistics(e, n_vertices=2)
        assert s.m_undirected == 1

    def test_empty_graph(self):
        s = graph_statistics(Edges.empty(), n_vertices=5)
        assert s.m_undirected == 0
        assert s.locality_fraction == 1.0
