"""Unit tests for the simulated machine (repro.simmpi.machine)."""

import numpy as np
import pytest

from repro.simmpi import CostModel, Machine, SimulatedOutOfMemory


class TestConstruction:
    def test_cores(self):
        assert Machine(8, threads=6).cores == 48

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Machine(0)
        with pytest.raises(ValueError):
            Machine(4, threads=0)

    def test_clocks_start_at_zero(self):
        m = Machine(5)
        assert m.elapsed() == 0.0
        assert np.array_equal(m.clock, np.zeros(5))


class TestCharging:
    def test_scalar_charge_hits_all(self):
        m = Machine(4)
        m.charge(1.5)
        assert np.array_equal(m.clock, np.full(4, 1.5))

    def test_vector_charge(self):
        m = Machine(3)
        m.charge(np.array([1.0, 2.0, 3.0]))
        assert m.elapsed() == 3.0

    def test_rank_subset_charge(self):
        m = Machine(4)
        m.charge(2.0, ranks=np.array([1, 3]))
        assert list(m.clock) == [0.0, 2.0, 0.0, 2.0]

    def test_charge_scan_uses_threads(self):
        m1 = Machine(1, threads=1)
        m8 = Machine(1, threads=8)
        m1.charge_scan(np.array([10_000]))
        m8.charge_scan(np.array([10_000]))
        assert m8.elapsed() < m1.elapsed()

    def test_charge_sort_superlinear(self):
        m = Machine(2)
        m.charge_sort(np.array([1024, 2048]))
        assert m.clock[1] > 2 * m.clock[0]

    def test_barrier_synchronises(self):
        m = Machine(3)
        m.charge(np.array([1.0, 5.0, 2.0]))
        m.barrier()
        assert (m.clock >= 5.0).all()
        assert np.allclose(m.clock, m.clock[0])

    def test_reset(self):
        m = Machine(2)
        m.charge(1.0)
        with m.phase("x"):
            m.charge(1.0)
        m.reset()
        assert m.elapsed() == 0.0
        assert m.phase_times == {}


class TestPhases:
    def test_simple_phase_accumulates(self):
        m = Machine(2)
        with m.phase("work"):
            m.charge(np.array([1.0, 3.0]))
        assert m.phase_times["work"] == pytest.approx(3.0)

    def test_phase_accumulates_across_blocks(self):
        m = Machine(1)
        for _ in range(3):
            with m.phase("w"):
                m.charge(1.0)
        assert m.phase_times["w"] == pytest.approx(3.0)

    def test_nested_phase_is_exclusive(self):
        m = Machine(1)
        with m.phase("outer"):
            m.charge(1.0)
            with m.phase("inner"):
                m.charge(5.0)
            m.charge(2.0)
        assert m.phase_times["inner"] == pytest.approx(5.0)
        assert m.phase_times["outer"] == pytest.approx(3.0)

    def test_untimed_work_not_attributed(self):
        m = Machine(1)
        m.charge(7.0)
        with m.phase("a"):
            m.charge(1.0)
        assert m.phase_times["a"] == pytest.approx(1.0)


class TestMemory:
    def test_disabled_by_default(self):
        Machine(2).check_memory(1e18)  # no limit, no raise

    def test_limit_enforced(self):
        m = Machine(2, memory_limit_bytes=1000)
        m.check_memory(999)
        with pytest.raises(SimulatedOutOfMemory) as exc:
            m.check_memory(np.array([10.0, 2000.0]))
        assert exc.value.pe == 1
        assert exc.value.requested_bytes == 2000.0


class TestRng:
    def test_reset_restores_rng_streams(self):
        """reset() must rewind the per-PE RNGs, not leave them advanced."""
        m = Machine(3, seed=7)
        a = m.pe_rng(1).integers(0, 1 << 30, 16)
        m.pe_rng(2).integers(0, 1 << 30, 4)
        m.reset()
        b = m.pe_rng(1).integers(0, 1 << 30, 16)
        assert np.array_equal(a, b)

    def test_reset_reproduces_randomised_run_bit_for_bit(self):
        """A reset machine reruns pivot-sampling algorithms identically."""
        from repro.core import distributed_filter_boruvka
        from repro.dgraph import DistGraph
        from repro.graphgen import gen_family

        g = gen_family("GNM", 120, 500, seed=9)
        m = Machine(5, seed=3)
        results = []
        for _ in range(2):
            res = distributed_filter_boruvka(g.distribute(m))
            results.append((res.total_weight, res.elapsed,
                            res.msf_edges().canonical_triples()))
            m.reset()
        assert results[0][0] == results[1][0]
        assert results[0][1] == pytest.approx(results[1][1], rel=0, abs=0)
        assert np.array_equal(results[0][2], results[1][2])

    def test_per_pe_streams_differ(self):
        m = Machine(3)
        a = m.pe_rng(0).integers(0, 1 << 30, 10)
        b = m.pe_rng(1).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_deterministic_across_machines(self):
        a = Machine(2, seed=42).pe_rng(1).integers(0, 1 << 30, 10)
        b = Machine(2, seed=42).pe_rng(1).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_seed_changes_streams(self):
        a = Machine(2, seed=1).pe_rng(0).integers(0, 1 << 30, 10)
        b = Machine(2, seed=2).pe_rng(0).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)
