"""Integration tests: distributed Filter-Borůvka (Algorithm 2) vs Kruskal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    distributed_boruvka,
    distributed_filter_boruvka,
)
from repro.dgraph import DistGraph, Edges
from repro.graphgen import FAMILIES, gen_family
from repro.seq import kruskal_msf, verify_msf
from repro.simmpi import Machine

from helpers import random_distinct_weight_graph, random_simple_graph


def _cfg(**kwargs):
    return FilterConfig(boruvka=BoruvkaConfig(base_case_min=16),
                        sparse_avg_degree=2.0, min_edges_per_proc=8,
                        **kwargs)


class TestRandomGraphs:
    @pytest.mark.parametrize("p", [1, 2, 4, 7, 12])
    def test_matches_kruskal(self, p, rng):
        for _ in range(4):
            n = int(rng.integers(8, 100))
            g = random_simple_graph(rng, n, 5 * n)
            if len(g) == 0:
                continue
            dg = DistGraph.from_global_edges(Machine(p), g)
            res = distributed_filter_boruvka(dg, _cfg())
            verify_msf(res.msf_edges(), g, n, check_edges=False)

    def test_identical_edges_with_distinct_weights(self, rng):
        n = 60
        g = random_distinct_weight_graph(rng, n, 5 * n)
        dg = DistGraph.from_global_edges(Machine(5), g)
        res = distributed_filter_boruvka(dg, _cfg())
        verify_msf(res.msf_edges(), g, n, check_edges=True)

    def test_agrees_with_plain_boruvka(self, rng):
        n = 70
        g = random_simple_graph(rng, n, 6 * n)
        dg1 = DistGraph.from_global_edges(Machine(6), g)
        dg2 = DistGraph.from_global_edges(Machine(6), g)
        r1 = distributed_boruvka(dg1, BoruvkaConfig(base_case_min=16))
        r2 = distributed_filter_boruvka(dg2, _cfg())
        assert r1.total_weight == r2.total_weight


class TestRecursionPaths:
    def test_all_equal_weights_degenerate_pivot(self, rng):
        n = 50
        g = random_simple_graph(rng, n, 5 * n)
        g.w[:] = 7
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = distributed_filter_boruvka(dg, _cfg())
        verify_msf(res.msf_edges(), g, n, check_edges=False)

    def test_sparse_input_goes_straight_to_base_case(self, rng):
        n = 50
        g = random_simple_graph(rng, n, n)  # avg degree ~2
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = distributed_filter_boruvka(dg, _cfg())
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.phase_times.get("pivot_partition", 0.0) == 0.0

    def test_dense_input_filters(self, rng):
        n = 40
        g = random_simple_graph(rng, n, 15 * n)
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = distributed_filter_boruvka(dg, _cfg())
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.phase_times.get("filter", 0.0) > 0.0

    def test_merge_back_path(self, rng):
        # A huge merge_back_fraction forces the propagate-back branch.
        n = 60
        g = random_simple_graph(rng, n, 10 * n)
        dg = DistGraph.from_global_edges(Machine(4), g)
        cfg = FilterConfig(boruvka=BoruvkaConfig(base_case_min=16),
                           sparse_avg_degree=2.0, min_edges_per_proc=8,
                           merge_back_fraction=0.99)
        res = distributed_filter_boruvka(dg, cfg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)

    def test_accepts_plain_boruvka_config(self, rng):
        n = 40
        g = random_simple_graph(rng, n, 4 * n)
        dg = DistGraph.from_global_edges(Machine(3), g)
        res = distributed_filter_boruvka(dg, BoruvkaConfig(base_case_min=16))
        verify_msf(res.msf_edges(), g, n, check_edges=False)


class TestFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_generator_families(self, family):
        g = gen_family(family, 400, 2400, seed=6)
        dg = g.distribute(Machine(6))
        res = distributed_filter_boruvka(dg, _cfg())
        verify_msf(res.msf_edges(), g.edges, g.n_vertices,
                   check_edges=False)


class TestShapeClaims:
    def test_filter_reduces_communication_on_dense_gnm(self):
        """The mechanism behind the paper's up-to-4x GNM speedup:
        filtering moves most heavy edges out before they are ever
        redistributed, cutting the bytes on the wire."""
        g = gen_family("GNM", 1024, 16384, seed=7)
        m1, m2 = Machine(16), Machine(16)
        r_plain = distributed_boruvka(
            g.distribute(m1), BoruvkaConfig(base_case_min=64))
        r_filter = distributed_filter_boruvka(
            g.distribute(m2),
            FilterConfig(boruvka=BoruvkaConfig(base_case_min=64)))
        assert r_filter.stats["bytes_communicated"] < \
            r_plain.stats["bytes_communicated"]


class TestPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 8), st.integers(8, 40), st.integers(0, 10 ** 6))
    def test_weight_invariant(self, p, n, seed):
        rng = np.random.default_rng(seed)
        g = random_simple_graph(rng, n, 5 * n)
        if len(g) == 0:
            return
        dg = DistGraph.from_global_edges(Machine(p), g)
        res = distributed_filter_boruvka(dg, _cfg())
        assert res.total_weight == kruskal_msf(g, n).total_weight()


@pytest.fixture
def rng():
    return np.random.default_rng(97)
