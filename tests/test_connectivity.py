"""Tests for distributed connected components (repro.core.connectivity)."""

import numpy as np
import pytest

from repro.core import BoruvkaConfig, connected_components
from repro.dgraph import DistGraph, Edges
from repro.seq import UnionFind
from repro.simmpi import Machine

from helpers import random_simple_graph


def _reference_partition(g, n):
    uf = UnionFind(n)
    uf.union_edges(g.u, g.v)
    return uf


class TestConnectedComponents:
    @pytest.mark.parametrize("p", [1, 2, 4, 7, 9])
    def test_matches_union_find(self, p, rng):
        n = 60
        g = random_simple_graph(rng, n, 100)  # sparse -> several components
        dg = DistGraph.from_global_edges(Machine(p), g)
        res = connected_components(dg, BoruvkaConfig(base_case_min=16))
        ref = _reference_partition(g, n)
        labels = res.labels()
        vertices = np.unique(g.u)
        for a in vertices:
            for b in vertices:
                same_ref = ref.connected(int(a), int(b))
                same_got = labels[a] == labels[b]
                assert same_ref == same_got, (a, b)

    def test_component_count(self, rng):
        n = 50
        g = random_simple_graph(rng, n, 60)
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = connected_components(dg)
        ref = _reference_partition(g, n)
        vertices = np.unique(g.u)
        expected = len(np.unique(ref.find_many(vertices)))
        assert res.n_components == expected

    def test_connected_graph_single_component(self, rng):
        n = 30
        u = np.arange(n - 1)
        g = Edges(np.concatenate([u, u + 1]),
                  np.concatenate([u + 1, u]),
                  np.ones(2 * (n - 1), dtype=np.int64)).sort_lex()
        g.id[:] = np.arange(len(g))
        dg = DistGraph.from_global_edges(Machine(3), g)
        res = connected_components(dg, BoruvkaConfig(base_case_min=8))
        assert res.n_components == 1

    def test_labels_are_representatives(self, rng):
        """Two vertices share a component iff they share a label, and the
        label is itself a member of the component."""
        n = 40
        g = random_simple_graph(rng, n, 70)
        dg = DistGraph.from_global_edges(Machine(5), g)
        res = connected_components(dg)
        labels = res.labels()
        ref = _reference_partition(g, n)
        for v in np.unique(g.u):
            rep = int(labels[v])
            assert ref.connected(int(v), rep)

    def test_empty_graph(self):
        dg = DistGraph(Machine(3), [Edges.empty()] * 3)
        res = connected_components(dg)
        assert res.n_components == 0

    def test_elapsed_and_phases_populated(self, rng):
        g = random_simple_graph(rng, 40, 120)
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = connected_components(dg)
        assert res.elapsed > 0
        assert res.phase_times


@pytest.fixture
def rng():
    return np.random.default_rng(131)
