"""Integration tests: distributed Borůvka (Algorithm 1) vs Kruskal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoruvkaConfig, distributed_boruvka
from repro.dgraph import DistGraph
from repro.graphgen import FAMILIES, gen_family
from repro.seq import kruskal_msf, verify_msf
from repro.simmpi import Machine

from helpers import random_distinct_weight_graph, random_simple_graph


class TestRandomGraphs:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13])
    def test_matches_kruskal(self, p, rng):
        for _ in range(4):
            n = int(rng.integers(5, 90))
            g = random_simple_graph(rng, n, 4 * n)
            if len(g) == 0:
                continue
            dg = DistGraph.from_global_edges(Machine(p), g)
            res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
            verify_msf(res.msf_edges(), g, n, check_edges=False)

    def test_identical_edges_with_distinct_weights(self, rng):
        for p in (1, 4, 7):
            n = 50
            g = random_distinct_weight_graph(rng, n, 3 * n)
            dg = DistGraph.from_global_edges(Machine(p), g)
            res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
            verify_msf(res.msf_edges(), g, n, check_edges=True)

    def test_deterministic(self, rng):
        n = 40
        g = random_simple_graph(rng, n, 150)
        outs = []
        for _ in range(2):
            dg = DistGraph.from_global_edges(Machine(5, seed=9), g)
            res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
            outs.append(res)
        assert outs[0].total_weight == outs[1].total_weight
        assert outs[0].elapsed == outs[1].elapsed
        a = outs[0].msf_edges()
        b = outs[1].msf_edges()
        assert np.array_equal(a.canonical_triples(), b.canonical_triples())


class TestConfigurations:
    @pytest.mark.parametrize("alltoall", ["direct", "grid", "hypercube",
                                          "auto"])
    def test_alltoall_variants(self, alltoall, rng):
        n = 60
        g = random_simple_graph(rng, n, 250)
        dg = DistGraph.from_global_edges(Machine(6), g)
        cfg = BoruvkaConfig(base_case_min=16, alltoall=alltoall)
        res = distributed_boruvka(dg, cfg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)

    @pytest.mark.parametrize("sorter", ["hypercube", "samplesort", "auto"])
    def test_sorter_variants(self, sorter, rng):
        n = 60
        g = random_simple_graph(rng, n, 250)
        dg = DistGraph.from_global_edges(Machine(6), g)
        cfg = BoruvkaConfig(base_case_min=16, sorter=sorter)
        res = distributed_boruvka(dg, cfg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)

    def test_without_preprocessing(self, rng):
        n = 60
        g = random_simple_graph(rng, n, 250)
        dg = DistGraph.from_global_edges(Machine(6), g)
        cfg = BoruvkaConfig(base_case_min=16, local_preprocessing=False)
        res = distributed_boruvka(dg, cfg)
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.phase_times.get("local_preprocessing", 0.0) == 0.0

    def test_paper_default_threshold_goes_straight_to_base_case(self, rng):
        n = 60
        g = random_simple_graph(rng, n, 250)
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = distributed_boruvka(dg, BoruvkaConfig.paper_defaults())
        verify_msf(res.msf_edges(), g, n, check_edges=False)
        assert res.rounds == 0  # n << 35 000


class TestFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_generator_families(self, family):
        g = gen_family(family, 400, 1600, seed=5)
        dg = g.distribute(Machine(6))
        res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=32))
        verify_msf(res.msf_edges(), g.edges, g.n_vertices,
                   check_edges=False)


class TestResultObject:
    def test_fields(self, rng):
        n = 40
        g = random_simple_graph(rng, n, 150)
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=8))
        assert res.algorithm == "boruvka"
        assert res.elapsed > 0
        assert res.total_weight == kruskal_msf(g, n).total_weight()
        assert set(res.phase_times) & {"min_edges", "base_case"}
        assert res.stats["n_collectives"] > 0
        assert len(res.msf_parts) == 4

    def test_output_on_home_pes(self, rng):
        """Each MSF edge is reported by the PE owning its id range."""
        n = 40
        g = random_simple_graph(rng, n, 150)
        machine = Machine(4)
        dg = DistGraph.from_global_edges(machine, g)
        sizes = [len(p) for p in dg.parts]
        starts = np.concatenate([[0], np.cumsum(sizes)])
        res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=8))
        for i, part in enumerate(res.msf_parts):
            assert ((part.id >= starts[i]) & (part.id < starts[i + 1])).all()

    def test_original_endpoints_reported(self, rng):
        n = 40
        g = random_simple_graph(rng, n, 150)
        dg = DistGraph.from_global_edges(Machine(4), g)
        res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=8))
        msf = res.msf_edges()
        for k in range(len(msf)):
            pos = int(msf.id[k])
            assert g.u[pos] == msf.u[k]
            assert g.v[pos] == msf.v[k]
            assert g.w[pos] == msf.w[k]


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8), st.integers(4, 40), st.integers(0, 10 ** 6))
    def test_weight_invariant(self, p, n, seed):
        rng = np.random.default_rng(seed)
        g = random_simple_graph(rng, n, 3 * n)
        if len(g) == 0:
            return
        dg = DistGraph.from_global_edges(Machine(p), g)
        res = distributed_boruvka(dg, BoruvkaConfig(base_case_min=8))
        assert res.total_weight == kruskal_msf(g, n).total_weight()


@pytest.fixture
def rng():
    return np.random.default_rng(83)
