"""Cost-model sensitivity: the reproduced *shapes* must not hinge on exact
machine constants (the robustness check DESIGN.md and EXPERIMENTS.md cite).

Each test perturbs alpha / beta / the per-element charges by 2x in both
directions and asserts that the qualitative orderings behind the paper's
figures survive:

* two-level all-to-all beats direct at scale (Fig. 2),
* our boruvka beats sparseMatrix on a locality family (Fig. 3),
* local preprocessing pays off on a dense geometric instance (Fig. 4).
"""

import numpy as np
import pytest

from repro.analysis import run_algorithm
from repro.core import BoruvkaConfig
from repro.graphgen import gen_family
from repro.simmpi import Comm, CostModel, Machine, alltoallv_direct, alltoallv_grid

PERTURBATIONS = [
    ("baseline", {}),
    ("alpha/2", {"alpha": 1e-6}),
    ("alpha*2", {"alpha": 4e-6}),
    ("beta/2", {"beta": 2e-9, "beta_sw": 5e-10}),
    ("beta*2", {"beta": 8e-9, "beta_sw": 2e-9}),
    ("sort*2", {"c_sort": 1.6e-8}),
    ("scan*2", {"c_scan": 2e-9}),
]


def _cost(overrides) -> CostModel:
    return CostModel(**overrides)


@pytest.mark.parametrize("name,overrides", PERTURBATIONS)
class TestShapeStability:
    def test_grid_alltoall_wins_at_scale(self, name, overrides):
        p = 256
        bufs = [np.zeros((p, 1), dtype=np.int64) for _ in range(p)]
        cnts = [np.ones(p, dtype=np.int64) for _ in range(p)]
        md = Machine(p, cost=_cost(overrides))
        mg = Machine(p, cost=_cost(overrides))
        alltoallv_direct(Comm(md), bufs, cnts)
        alltoallv_grid(Comm(mg), bufs, cnts)
        assert mg.elapsed() < md.elapsed(), name

    def test_boruvka_beats_sparsematrix_on_grid(self, name, overrides):
        g = gen_family("2D-GRID", 1024, 2048, seed=21)
        r_ours = run_algorithm(g, "boruvka", 16,
                               config=BoruvkaConfig(base_case_min=64),
                               cost=_cost(overrides))
        r_as = run_algorithm(g, "awerbuch-shiloach", 16,
                             cost=_cost(overrides))
        assert r_ours.elapsed < r_as.elapsed, name

    def test_preprocessing_pays_off_on_dense_rgg(self, name, overrides):
        g = gen_family("2D-RGG", 1024, 16384, seed=22)
        on = run_algorithm(
            g, "boruvka", 16,
            config=BoruvkaConfig(base_case_min=64,
                                 local_preprocessing=True),
            cost=_cost(overrides))
        off = run_algorithm(
            g, "boruvka", 16,
            config=BoruvkaConfig(base_case_min=64,
                                 local_preprocessing=False),
            cost=_cost(overrides))
        assert on.elapsed < off.elapsed, name
