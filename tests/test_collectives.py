"""Unit tests for the SPMD collectives (repro.simmpi.collectives)."""

import numpy as np
import pytest

from repro.simmpi import Comm, Machine


@pytest.fixture
def comm():
    return Comm(Machine(4))


class TestConstruction:
    def test_world_covers_all(self):
        m = Machine(6)
        assert Comm(m).size == 6

    def test_subset(self):
        m = Machine(6)
        c = Comm(m, [1, 3, 5])
        assert c.size == 3

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            Comm(Machine(4), [0, 0, 1])

    def test_sub_of_sub(self):
        m = Machine(8)
        c = Comm(m, [0, 2, 4, 6]).sub([1, 3])
        assert list(c.ranks) == [2, 6]


class TestBcastReduce:
    def test_bcast_returns_value(self, comm):
        assert comm.bcast(17) == 17

    def test_allreduce_sum(self, comm):
        assert comm.allreduce([1, 2, 3, 4]) == 10

    def test_allreduce_min_max(self, comm):
        assert comm.allreduce([5, 2, 9, 4], op="min") == 2
        assert comm.allreduce([5, 2, 9, 4], op="max") == 9

    def test_allreduce_vector(self, comm):
        arrays = [np.array([i, 10 - i]) for i in range(4)]
        out = comm.allreduce(arrays, op="min")
        assert list(out) == [0, 7]

    def test_allreduce_does_not_mutate_inputs(self, comm):
        arrays = [np.array([1.0]), np.array([2.0]),
                  np.array([3.0]), np.array([4.0])]
        comm.allreduce(arrays)
        assert arrays[0][0] == 1.0

    def test_allreduce_custom_op(self, comm):
        out = comm.allreduce([(1, 9), (0, 3), (2, 2), (0, 5)],
                             op=lambda a, b: min(a, b))
        assert out == (0, 3)

    def test_wrong_arity_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([1, 2, 3])

    def test_unknown_op_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([1, 2, 3, 4], op="median")

    def test_reduce_matches_allreduce(self, comm):
        assert comm.reduce([1, 2, 3, 4]) == 10


class TestPrefix:
    def test_exscan_sum(self, comm):
        assert comm.exscan([1, 2, 3, 4]) == [0, 1, 3, 6]

    def test_scan_sum(self, comm):
        assert comm.scan([1, 2, 3, 4]) == [1, 3, 6, 10]

    def test_exscan_max(self, comm):
        out = comm.exscan([3, 1, 5, 2], op="max")
        assert out[1:] == [3, 3, 5]
        assert out[0] is None


class TestGather:
    def test_allgather(self, comm):
        assert comm.allgather(["a", "b", "c", "d"]) == ["a", "b", "c", "d"]

    def test_allgatherv_concatenates(self, comm):
        parts = [np.arange(i) for i in range(4)]
        out = comm.allgatherv(parts)
        assert list(out) == [0, 0, 1, 0, 1, 2]

    def test_gatherv(self, comm):
        parts = [np.full(2, i) for i in range(4)]
        assert len(comm.gatherv(parts)) == 8


class TestCostAccounting:
    def test_collectives_advance_clocks(self):
        m = Machine(4)
        c = Comm(m)
        c.allreduce([1, 2, 3, 4])
        assert m.elapsed() > 0

    def test_collective_synchronises(self):
        m = Machine(4)
        m.charge(np.array([0.0, 9.0, 0.0, 0.0]))
        Comm(m).barrier()
        assert (m.clock >= 9.0).all()

    def test_subgroup_leaves_others_untouched(self):
        m = Machine(4)
        Comm(m, [0, 1]).allreduce([1, 2])
        assert m.clock[2] == 0.0 and m.clock[3] == 0.0

    def test_larger_payload_costs_more(self):
        m1, m2 = Machine(4), Machine(4)
        Comm(m1).allreduce([np.zeros(10)] * 4)
        Comm(m2).allreduce([np.zeros(100_000)] * 4)
        assert m2.elapsed() > m1.elapsed()

    def test_collective_counter(self):
        m = Machine(4)
        c = Comm(m)
        c.allreduce([1, 2, 3, 4])
        c.barrier()
        assert m.n_collectives == 2
