"""Tests for MINEDGES (repro.core.minedges)."""

import numpy as np
import pytest

from repro.core import min_edges
from repro.dgraph import DistGraph
from repro.simmpi import Machine

from helpers import random_simple_graph


def _naive_min(graph, vertex):
    """Brute-force lightest incident edge by the (w, cu, cv) order."""
    best = None
    e = graph
    for k in range(len(e)):
        if e.u[k] != vertex:
            continue
        key = (int(e.w[k]), int(min(e.u[k], e.v[k])),
               int(max(e.u[k], e.v[k])))
        if best is None or key < best[0]:
            best = (key, int(e.v[k]), int(e.id[k]))
    return best


class TestMinEdges:
    def test_matches_bruteforce(self, rng):
        g = random_simple_graph(rng, 30, 150)
        dg = DistGraph.from_global_edges(Machine(5), g, avoid_shared=True)
        chosen = min_edges(dg)
        for i in range(5):
            ch = chosen[i]
            for k, v in enumerate(ch.vids):
                key, to, eid = _naive_min(g, v)
                assert ch.to[k] == to or (
                    int(ch.weight[k]), int(min(v, ch.to[k])),
                    int(max(v, ch.to[k]))) == key
                assert ch.weight[k] == key[0]

    def test_covers_all_local_vertices(self, rng):
        g = random_simple_graph(rng, 40, 200)
        dg = DistGraph.from_global_edges(Machine(6), g)
        chosen = min_edges(dg)
        seen = np.concatenate([c.vids for c in chosen])
        # Every distinct source appears (shared ones possibly twice).
        assert set(np.unique(g.u)) == set(np.unique(seen))

    def test_shared_vertices_flagged(self, rng):
        g = random_simple_graph(rng, 40, 300)
        dg = DistGraph.from_global_edges(Machine(8), g)  # shared allowed
        shared_set = set(dg.shared_vertex_set().tolist())
        chosen = min_edges(dg)
        for c in chosen:
            for k, v in enumerate(c.vids):
                assert c.shared[k] == (int(v) in shared_set)

    def test_empty_pe(self):
        from repro.dgraph import Edges

        dg = DistGraph(Machine(3), [Edges.empty()] * 3)
        chosen = min_edges(dg)
        assert all(len(c) == 0 for c in chosen)

    def test_charges_time(self, rng):
        g = random_simple_graph(rng, 30, 150)
        m = Machine(4)
        dg = DistGraph.from_global_edges(m, g)
        before = m.elapsed()
        min_edges(dg)
        assert m.elapsed() > before


@pytest.fixture
def rng():
    return np.random.default_rng(31)
