"""Tests for block-partition helpers (repro.utils.partition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import block_bounds, block_size, owner_of, split_evenly


class TestBlockBounds:
    def test_even_split(self):
        assert list(block_bounds(12, 4)) == [0, 3, 6, 9, 12]

    def test_uneven_split_front_loaded(self):
        assert list(block_bounds(10, 4)) == [0, 3, 6, 8, 10]

    def test_more_pes_than_elements(self):
        b = block_bounds(2, 5)
        assert b[-1] == 2
        assert list(np.diff(b)) == [1, 1, 0, 0, 0]

    def test_zero_elements(self):
        assert list(block_bounds(0, 3)) == [0, 0, 0, 0]

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            block_bounds(5, 0)

    def test_block_size_matches_bounds(self):
        for n, p in [(10, 3), (7, 7), (0, 2), (100, 9)]:
            b = block_bounds(n, p)
            for i in range(p):
                assert block_size(n, p, i) == b[i + 1] - b[i]


class TestOwnerOf:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 20))
    def test_matches_searchsorted(self, n, p):
        idx = np.arange(n)
        b = block_bounds(n, p)
        expect = np.searchsorted(b, idx, side="right") - 1
        assert np.array_equal(owner_of(idx, n, p), expect)

    def test_empty_queries(self):
        assert len(owner_of(np.empty(0, dtype=np.int64), 10, 3)) == 0


class TestSplitEvenly:
    def test_roundtrip(self):
        arr = np.arange(11)
        parts = split_evenly(arr, 3)
        assert [len(x) for x in parts] == [4, 4, 3]
        assert np.array_equal(np.concatenate(parts), arr)
