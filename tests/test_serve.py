"""Tests for repro.serve: sessions, incremental recompute, queue, wire.

The core contract (ISSUE 10, docs/serving.md): every committed epoch --
whatever strategy the session picks -- lands on the *bit-identical* MSF
weight a from-scratch run over the mutated edge list would produce, with
or without a fault schedule, on every execution engine.  The queue tests
pin the serving semantics (backpressure, deadlines, cancellation, epoch
batching) and the transport tests the NDJSON wire protocol.
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro.core import BoruvkaConfig, RoundCheckpointLog
from repro.dgraph.edges import Edges
from repro.engines import MultiprocessEngine
from repro.seq import msf_weight, spans_same_components
from repro.serve import (
    GraphSession,
    MutationError,
    ReplayBase,
    RequestQueue,
    percentile,
    plan_replay,
    serve_lines,
    serve_tcp,
)
from repro.serve import incremental, protocol

#: Forces several Borůvka rounds on modest graphs so replay has a log.
MULTI_ROUND = BoruvkaConfig(base_case_min=16, base_case_factor=1,
                            local_preprocessing=False)
FAULTS = "seed=11, pe_fail=0.05, retries=10, max_replays=64"


def _triples(rng, n, m):
    """m distinct undirected weighted edges on n vertices."""
    seen, rows = set(), []
    while len(rows) < m:
        a, b = (int(x) for x in rng.integers(0, n, 2))
        key = (min(a, b), max(a, b))
        if a == b or key in seen:
            continue
        seen.add(key)
        rows.append([key[0], key[1], int(rng.integers(1, 1_000_000))])
    return rows


def _expected(rows, n):
    """Sequential-Kruskal MSF weight of an undirected triple list."""
    if not rows:
        return 0
    arr = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
    return msf_weight(Edges(arr[:, 0], arr[:, 1], arr[:, 2]), n)


def _check(session, rows):
    """Served weight must equal Kruskal and the forest must span."""
    view = session.view
    assert view.total_weight == _expected(rows, session.n_vertices)
    if rows:
        arr = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
        forest = Edges(view.forest_u, view.forest_v, view.forest_w)
        assert spans_same_components(
            forest, Edges(arr[:, 0], arr[:, 1], arr[:, 2]),
            session.n_vertices)


def _nontree_pair(view):
    """Some present undirected pair that is not a forest edge."""
    half = view.edges.u < view.edges.v
    for u, v in zip(view.edges.u[half], view.edges.v[half]):
        if not view.edge_in_msf(int(u), int(v)):
            return int(u), int(v)
    raise AssertionError("graph has no non-tree edge")


def _tree_pair(view):
    """Some forest pair of the current view."""
    return int(view.forest_u[0]), int(view.forest_v[0])


def _absent_pairs(view, k):
    """The first k undirected pairs not present in the graph."""
    out = []
    for u in range(view.n_vertices):
        for v in range(u + 1, view.n_vertices):
            if not view.has_pair(u, v):
                out.append((u, v))
                if len(out) == k:
                    return out
    raise AssertionError("graph is complete")


def _fork_engine():
    return MultiprocessEngine(min_offload_bytes=0, start_method="fork")


class Model:
    """Host-side reference: the live undirected edge dict."""

    def __init__(self, rows):
        self.live = {(r[0], r[1]): r[2] for r in rows}

    def rows(self):
        """Triple list of the current reference graph."""
        return [[u, v, w] for (u, v), w in sorted(self.live.items())]

    def apply(self, ops):
        """Mirror an accepted-op sequence onto the reference dict."""
        for kind, rows in ops:
            for row in rows:
                key = (min(row[0], row[1]), max(row[0], row[1]))
                if kind == "insert":
                    self.live[key] = row[2]
                else:
                    self.live.pop(key)


class TestSessionBasics:
    def test_initial_weight_matches_kruskal(self):
        rows = _triples(np.random.default_rng(0), 64, 200)
        with GraphSession(64, rows, n_procs=4) as s:
            _check(s, rows)
            assert s.view.version == 0
            assert s.view.n_undirected_edges == 200

    def test_empty_graph(self):
        with GraphSession(5, n_procs=2) as s:
            assert s.msf_weight()["weight"] == 0
            assert s.components()["n_components"] == 5

    def test_queries(self):
        rows = [[0, 1, 5], [1, 2, 3], [3, 4, 7]]
        with GraphSession(6, rows, n_procs=2) as s:
            assert s.msf_weight() == {"weight": 15, "version": 0}
            comp = s.components(vertices=[0, 2, 3, 5])
            assert comp["n_components"] == 3
            labels = comp["component_of"]
            assert labels[0] == labels[1] and labels[0] != labels[2]
            assert s.edge_in_msf(1, 0) == {
                "present": True, "in_msf": True, "version": 0}
            assert s.edge_in_msf(0, 5)["present"] is False
            st = s.stats()
            assert st["n_edges"] == 3 and st["weight"] == 15
            assert st["engine"] == s.machine.engine.name

    @pytest.mark.parametrize("rows,err", [
        ([[0, 0, 1]], "self loop"),
        ([[0, 1, 1], [1, 0, 2]], "duplicate"),
        ([[0, 9, 1]], "out of range"),
        ([[0, 1, 0]], "positive"),
    ])
    def test_initial_validation(self, rows, err):
        with pytest.raises(ValueError, match=err):
            GraphSession(4, rows, n_procs=2)

    def test_query_validation(self):
        with GraphSession(4, [[0, 1, 2]], n_procs=2) as s:
            with pytest.raises(MutationError):
                s.edge_in_msf(0, 4)
            with pytest.raises(MutationError):
                s.components(vertices=[7])


class TestEpochStrategies:
    @pytest.fixture
    def session(self):
        rows = _triples(np.random.default_rng(1), 96, 400)
        with GraphSession(96, rows, n_procs=4, cfg=MULTI_ROUND) as s:
            yield s, Model(rows)

    def _apply(self, s, model, ops):
        outcomes, report = s.apply_epoch(ops)
        assert all(o is None for o in outcomes), outcomes
        model.apply(ops)
        _check(s, model.rows())
        return report

    def test_nontree_delete_is_noop(self, session):
        s, model = session
        pair = _nontree_pair(s.view)
        report = self._apply(s, model, [("delete", [list(pair)])])
        assert report.strategy == "noop"
        assert report.simulated_seconds == 0.0
        assert s.view.version == 1

    def test_insert_only_is_sparsified(self, session):
        s, model = session
        (a, b), = _absent_pairs(s.view, 1)
        report = self._apply(s, model, [("insert", [[a, b, 1]])])
        assert report.strategy == "sparsified"
        assert report.simulated_seconds > 0.0

    def test_tree_delete_replays(self, session):
        s, model = session
        assert len(s._base.log) > 0, "config produced no logged rounds"
        pair = _tree_pair(s.view)
        report = self._apply(s, model, [("delete", [list(pair)])])
        assert report.strategy == "replay"
        assert report.replayed_from is not None
        assert s.replay_depths == [report.replayed_from]

    def test_tree_delete_full_without_log(self):
        rows = _triples(np.random.default_rng(2), 48, 150)
        with GraphSession(48, rows, n_procs=4, cfg=MULTI_ROUND,
                          log_max_rounds=0) as s:
            model = Model(rows)
            pair = _tree_pair(s.view)
            outcomes, report = s.apply_epoch([("delete", [list(pair)])])
            assert outcomes == [None]
            assert report.strategy == "full"
            model.apply([("delete", [list(pair)])])
            _check(s, model.rows())

    def test_mixed_epoch(self, session):
        s, model = session
        pair = _tree_pair(s.view)
        ops = [("delete", [list(pair)]),
               ("insert", [[pair[0], pair[1], 999_999_999]])]
        report = self._apply(s, model, ops)
        assert report.n_inserted == 1 and report.n_deleted == 1

    def test_insert_then_delete_cancels(self, session):
        s, model = session
        (a, b), = _absent_pairs(s.view, 1)
        before = s.view.version
        outcomes, report = s.apply_epoch([
            ("insert", [[a, b, 7]]), ("delete", [[a, b]])])
        assert outcomes == [None, None]
        assert report is None, "net-empty epoch must not commit"
        assert s.view.version == before
        _check(s, model.rows())

    def test_all_or_nothing_requests(self, session):
        s, model = session
        (a, b), (c, d) = _absent_pairs(s.view, 2)
        good = ("insert", [[a, b, 5]])
        bad = ("insert", [[c, d, 5], [c, d, 6]])  # dup inside request
        outcomes, report = s.apply_epoch([bad, good])
        assert outcomes[0] is not None and "duplicate" in outcomes[0]
        assert outcomes[1] is None
        assert report.n_inserted == 1
        model.apply([good])
        _check(s, model.rows())
        assert not s.view.has_pair(c, d), \
            "rejected request must contribute nothing"

    def test_delete_missing_edge_rejected(self, session):
        s, _ = session
        pair, = _absent_pairs(s.view, 1)
        outcomes, report = s.apply_epoch([("delete", [list(pair)])])
        assert "does not exist" in outcomes[0]
        assert report is None

    def test_failed_epoch_leaves_state_intact(self, session, monkeypatch):
        s, model = session

        def boom(*a, **k):
            raise RuntimeError("injected recompute failure")

        (a, b), = _absent_pairs(s.view, 1)
        monkeypatch.setattr(incremental, "sparsified_recompute", boom)
        before = s.view
        with pytest.raises(RuntimeError, match="injected"):
            s.apply_epoch([("insert", [[a, b, 3]])])
        assert s.view is before, "failed epoch must not publish"
        monkeypatch.undo()
        # the session stays fully usable afterwards
        self._apply(s, model, [("insert", [[a, b, 3]])])


class TestChurnDifferential:
    """Random epochs vs sequential Kruskal -- the pinned differential."""

    def _churn(self, s, model, rng, epochs, ops_per_epoch=4):
        strategies = []
        for _ in range(epochs):
            ops = []
            for _ in range(ops_per_epoch):
                live = sorted(model.live)
                if rng.random() < 0.5 and live:
                    pair = live[int(rng.integers(0, len(live)))]
                    ops.append(("delete", [list(pair)]))
                    model.live.pop(pair)
                else:
                    while True:
                        a, b = (int(x) for x in
                                rng.integers(0, s.n_vertices, 2))
                        key = (min(a, b), max(a, b))
                        if a != b and key not in model.live:
                            break
                    w = int(rng.integers(1, 1_000_000))
                    ops.append(("insert", [[key[0], key[1], w]]))
                    model.live[key] = w
            if not ops:
                continue
            outcomes, report = s.apply_epoch(ops)
            assert all(o is None for o in outcomes), outcomes
            if report is not None:
                strategies.append(report.strategy)
            _check(s, model.rows())
        return strategies

    def test_random_churn_matches_kruskal(self):
        rng = np.random.default_rng(7)
        rows = _triples(rng, 128, 512)
        with GraphSession(128, rows, n_procs=4, cfg=MULTI_ROUND) as s:
            strategies = self._churn(s, Model(rows), rng, epochs=15)
        assert set(strategies) - {"full"}, \
            "churn never used an incremental strategy"

    @pytest.mark.parametrize("engine", [None, "multiprocess"])
    @pytest.mark.parametrize("faults", [None, FAULTS])
    def test_incremental_matches_from_scratch(self, engine, faults):
        """Epoch recompute == a brand-new session, bit for bit."""
        rng = np.random.default_rng(13)
        rows = _triples(rng, 80, 280)
        spec = _fork_engine() if engine else None
        with GraphSession(80, rows, n_procs=4, cfg=MULTI_ROUND, seed=3,
                          faults=faults, engine=spec) as s:
            model = Model(rows)
            self._churn(s, model, rng, epochs=5)
            with GraphSession(80, model.rows(), n_procs=4,
                              cfg=MULTI_ROUND, seed=3) as scratch:
                assert s.view.total_weight == scratch.view.total_weight, \
                    (f"incremental weight diverged from from-scratch "
                     f"(engine={engine}, faults={faults!r})")

    def test_faulted_epochs_recover_exact_weights(self):
        rng = np.random.default_rng(29)
        rows = _triples(rng, 96, 380)
        with GraphSession(96, rows, n_procs=4, cfg=MULTI_ROUND,
                          faults=FAULTS) as s:
            model = Model(rows)
            self._churn(s, model, rng, epochs=10)
            if s.machine.faults.counts:
                assert s.total_simulated_seconds > 0.0


class TestPlanReplay:
    """Unit tests over fabricated checkpoint logs (duck-typed parts)."""

    class _Ckpt:
        """Stand-in for a RoundCheckpoint: only ``parts[*].id`` is read."""

        class _Part:
            def __init__(self, ids):
                self.id = np.asarray(ids, dtype=np.int64)

        def __init__(self, ids):
            self.parts = [self._Part(ids)]

    def _base(self, entries, forest_ids):
        log = RoundCheckpointLog()
        for r, ids in entries.items():
            log.record(r, "round_body", self._Ckpt(ids))
        forest_ids = np.asarray(forest_ids, dtype=np.int64)
        return ReplayBase(log=log, snapshot=None, forest_ids=forest_ids,
                          forest_weights=np.ones_like(forest_ids),
                          total_rounds=max(entries, default=0) + 1)

    def test_no_base_or_empty_log(self):
        assert plan_replay(None, np.array([1])) is None
        base = self._base({}, [1, 2])
        assert plan_replay(base, np.array([1])) is None

    def test_unsupported_log(self):
        base = self._base({0: [1, 2, 3]}, [1, 2])
        base.log.mark_unsupported("body")
        assert plan_replay(base, np.array([1])) is None

    def test_no_dead_tree_resumes_deepest(self):
        base = self._base({0: [1, 2, 3, 9], 2: [2, 3, 9]}, [1, 2, 3])
        # deleted id 9 is not a forest edge: deepest logged round wins
        assert plan_replay(base, np.array([9])) == 2

    def test_dead_tree_resumes_before_last_seen(self):
        base = self._base({0: [1, 2, 3], 1: [2, 3], 2: [3]}, [1, 2, 3])
        # id 2 last seen in round 1 -> resume at round 1; id 1 last seen
        # in round 0 -> the minimum wins
        assert plan_replay(base, np.array([2]),
                           max_dirty_fraction=1.0) == 1
        assert plan_replay(base, np.array([1, 2]),
                           max_dirty_fraction=1.0) == 0

    def test_preprocessing_consumed_id_abandons(self):
        base = self._base({1: [2, 3], 2: [3]}, [1, 2, 3])
        # forest id 1 never appears in any logged round
        assert plan_replay(base, np.array([1]),
                           max_dirty_fraction=1.0) is None

    def test_dirty_fraction_abandons(self):
        base = self._base({0: [1, 2, 3, 4]}, [1, 2, 3, 4])
        assert plan_replay(base, np.array([1, 2]),
                           max_dirty_fraction=0.25) is None
        assert plan_replay(base, np.array([1]),
                           max_dirty_fraction=0.25) == 0


class TestRoundCheckpointLog:
    def test_prefix_retention(self):
        log = RoundCheckpointLog(max_entries=2)
        assert log.wants(0)
        log.record(0, "a", "h0")
        log.record(1, "a", "h1")
        assert not log.wants(2), "log must stop at max_entries"
        assert log.wants(1), "replayed logged round refreshes its entry"
        assert len(log) == 2
        assert log.handle(1) == "h1" and log.handle(5) is None

    def test_deepest_at_or_before(self):
        log = RoundCheckpointLog()
        log.record(0, "a", "h0")
        log.record(3, "a", "h3")
        assert log.deepest_at_or_before(2) == 0
        assert log.deepest_at_or_before(3) == 3
        assert RoundCheckpointLog().deepest_at_or_before(4) is None

    def test_unsupported_clears(self):
        log = RoundCheckpointLog()
        log.record(0, "a", "h0")
        log.mark_unsupported("body")
        assert len(log) == 0 and not log.wants(1)
        log.clear()
        assert log.unsupported is None and log.wants(0)


def _drive(coro):
    """Run one async queue scenario against a tiny session."""
    rows = [[0, 1, 4], [1, 2, 6], [2, 3, 1], [0, 3, 9]]
    with GraphSession(4, rows, n_procs=2) as session:
        async def main():
            queue = RequestQueue(session, max_depth=2, readers=2,
                                 epoch_max_batch=1000,
                                 epoch_max_delay_s=600.0)
            try:
                return await coro(queue)
            finally:
                queue.close()
        return asyncio.run(main())


class TestQueueSemantics:
    def test_percentile(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_query_roundtrip_and_metrics(self):
        async def scenario(queue):
            return await queue.submit({"id": 1, "op": "msf_weight"})

        resp = _drive(scenario)
        assert resp["ok"] and resp["result"]["weight"] == 11
        assert resp["metrics"]["version"] == 0
        assert resp["metrics"]["queue_wait_ms"] >= 0.0

    def test_backpressure_rejects_at_depth(self):
        async def scenario(queue):
            first = asyncio.ensure_future(queue.submit(
                {"id": 1, "op": "insert_edges", "edges": [[0, 2, 2]]}))
            await asyncio.sleep(0)
            second = asyncio.ensure_future(queue.submit(
                {"id": 2, "op": "insert_edges", "edges": [[1, 3, 2]]}))
            await asyncio.sleep(0)
            third = await queue.submit(
                {"id": 3, "op": "delete_edges", "edges": [[0, 3]]})
            flush = await queue.submit({"id": 4, "op": "flush"})
            return await first, await second, third, flush

        r1, r2, r3, flush = _drive(scenario)
        assert r1["ok"] and r2["ok"]
        assert not r3["ok"] and r3["error"]["code"] == "queue_full"
        assert flush["ok"] and flush["result"]["committed"]

    def test_cancel_pending_mutation(self):
        async def scenario(queue):
            fut = asyncio.ensure_future(queue.submit(
                {"id": "m1", "op": "insert_edges", "edges": [[0, 2, 2]]}))
            await asyncio.sleep(0)
            cancel = await queue.submit(
                {"id": "c", "op": "cancel", "target": "m1"})
            flush = await queue.submit({"id": "f", "op": "flush"})
            return await fut, cancel, flush

        mut, cancel, flush = _drive(scenario)
        assert not mut["ok"] and mut["error"]["code"] == "cancelled"
        assert cancel["ok"] and cancel["result"]["cancelled"] is True
        assert flush["result"]["committed"] is False

    def test_cancel_unknown_target(self):
        async def scenario(queue):
            return await queue.submit(
                {"id": "c", "op": "cancel", "target": "nope"})

        resp = _drive(scenario)
        assert resp["ok"] and resp["result"]["cancelled"] is False

    def test_mutation_deadline_expires_at_commit(self):
        async def scenario(queue):
            fut = asyncio.ensure_future(queue.submit(
                {"id": "m", "op": "insert_edges", "edges": [[0, 2, 2]],
                 "deadline_ms": 0.001}))
            await asyncio.sleep(0.02)
            flush = await queue.submit({"id": "f", "op": "flush"})
            return await fut, flush

        mut, flush = _drive(scenario)
        assert not mut["ok"]
        assert mut["error"]["code"] == "deadline_exceeded"
        assert flush["result"]["committed"] is False

    def test_epoch_batch_trigger_commits_without_flush(self):
        async def scenario(queue):
            queue.epoch_max_batch = 2
            futs = [asyncio.ensure_future(queue.submit(
                {"id": i, "op": "insert_edges", "edges": [edge]}))
                for i, edge in enumerate([[0, 2, 2], [1, 3, 2]])]
            return await asyncio.wait_for(asyncio.gather(*futs), 30)

        r0, r1 = _drive(scenario)
        assert r0["ok"] and r1["ok"]
        assert r0["result"]["strategy"] == "sparsified"

    def test_epoch_timer_trigger(self):
        async def scenario(queue):
            queue.epoch_max_delay_s = 0.01
            return await asyncio.wait_for(queue.submit(
                {"id": 1, "op": "insert_edges", "edges": [[0, 2, 2]]}), 30)

        resp = _drive(scenario)
        assert resp["ok"] and resp["result"]["applied"] is True

    def test_invalid_mutation_is_bad_request(self):
        async def scenario(queue):
            fut = asyncio.ensure_future(queue.submit(
                {"id": 1, "op": "delete_edges", "edges": [[0, 2]]}))
            await asyncio.sleep(0)
            flush = await queue.submit({"id": "f", "op": "flush"})
            return await fut, flush

        mut, _ = _drive(scenario)
        assert not mut["ok"] and mut["error"]["code"] == "bad_request"
        assert "does not exist" in mut["error"]["message"]

    def test_query_validation_maps_to_bad_request(self):
        async def scenario(queue):
            return await queue.submit(
                {"id": 1, "op": "edge_in_msf", "u": 0, "v": 99})

        resp = _drive(scenario)
        assert not resp["ok"] and resp["error"]["code"] == "bad_request"

    def test_shutdown_then_reject(self):
        async def scenario(queue):
            down = await queue.submit({"id": 1, "op": "shutdown"})
            late = await queue.submit({"id": 2, "op": "msf_weight"})
            return down, late

        down, late = _drive(scenario)
        assert down["ok"]
        assert not late["ok"] and late["error"]["code"] == "shutdown"

    def test_summary_counts(self):
        async def scenario(queue):
            await queue.submit({"id": 1, "op": "msf_weight"})
            await queue.submit({"id": 2, "op": "stats"})
            return queue.summary()

        summary = _drive(scenario)
        assert summary["requests"] == 2 and summary["errors"] == 0
        assert summary["p99_latency_ms"] >= summary["p50_latency_ms"] >= 0


class TestProtocol:
    def test_parse_rejects(self):
        for line, err in [
            ("not json", "invalid JSON"),
            ("[1,2]", "object"),
            ('{"id":1}', "op"),
            ('{"id":1,"op":"nope"}', "unknown op"),
            ('{"id":1,"op":"insert_edges"}', "edges"),
            ('{"id":1,"op":"edge_in_msf"}', "u"),
            ('{"id":1,"op":"cancel"}', "target"),
            ('{"id":1,"op":"msf_weight","deadline_ms":-5}', "deadline_ms"),
            ('{"id":[1],"op":"msf_weight"}', "id"),
        ]:
            with pytest.raises(protocol.ProtocolError, match=err):
                protocol.parse_request(line)

    def test_encode_is_compact_json(self):
        text = protocol.encode_response(
            protocol.ok_response(1, {"weight": 3}))
        assert "\n" not in text
        assert json.loads(text) == {
            "id": 1, "ok": True, "result": {"weight": 3}}


class TestServeLines:
    def test_roundtrip_script(self):
        # Queries may legally overtake an in-flight epoch commit, so the
        # post-mutation reads go in a second script on the same session
        # (the shutdown barrier guarantees the first script's epoch is
        # committed before serve_lines returns).
        rows = [[0, 1, 4], [1, 2, 6], [2, 3, 1]]
        with GraphSession(5, rows, n_procs=2) as session:
            first = [
                '{"id": 1, "op": "msf_weight"}',
                '{"id": 2, "op": "insert_edges", "edges": [[3, 4, 2]]}',
                '{"id": 3, "op": "flush"}',
                'garbage {{{',
                '{"id": 6, "op": "shutdown"}',
                '{"id": 7, "op": "msf_weight"}',  # after shutdown: unread
            ]
            out = [json.loads(t) for t in serve_lines(
                session, first, epoch_max_batch=1000,
                epoch_max_delay_s=600.0)]
            second = [json.loads(t) for t in serve_lines(session, [
                '{"id": 4, "op": "msf_weight"}',
                '{"id": 5, "op": "edge_in_msf", "u": 3, "v": 4}',
            ], epoch_max_batch=1000, epoch_max_delay_s=600.0)]
        by_id = {r.get("id"): r for r in out + second}
        assert by_id[1]["result"]["weight"] == 11
        assert by_id[2]["result"]["applied"] is True
        assert by_id[3]["result"]["committed"] is True
        assert by_id[4]["result"]["weight"] == 13
        assert by_id[5]["result"]["in_msf"] is True
        assert by_id[6]["ok"], "shutdown must be acknowledged"
        assert 7 not in by_id, "lines after shutdown must not be served"
        bad = [r for r in out if not r["ok"]]
        assert len(bad) == 1
        assert bad[0]["error"]["code"] == "bad_request"
        assert out[-1]["id"] == 6, "shutdown response must go out last"

    def test_mutations_batch_into_one_epoch(self):
        rows = _triples(np.random.default_rng(3), 32, 100)
        with GraphSession(32, rows, n_procs=2) as session:
            pairs = _absent_pairs(session.view, 4)
            lines = [json.dumps(
                {"id": i, "op": "insert_edges",
                 "edges": [[u, v, 1]]}) for i, (u, v) in enumerate(pairs)]
            lines.append('{"id": "f", "op": "flush"}')
            out = [json.loads(t) for t in serve_lines(
                session, lines, epoch_max_batch=1000,
                epoch_max_delay_s=600.0)]
            assert sum(session.epoch_counts.values()) == 1
            applied = [r for r in out if r["id"] != "f"]
            assert all(r["ok"] and r["result"]["n_inserted"] == 4
                       for r in applied)


class TestServeTcp:
    def test_tcp_roundtrip(self):
        rows = [[0, 1, 4], [1, 2, 6]]

        async def main():
            with GraphSession(3, rows, n_procs=2) as session:
                addr = {}
                server = asyncio.ensure_future(serve_tcp(
                    session, ready=lambda hp: addr.update(
                        host=hp[0], port=hp[1]),
                    epoch_max_batch=1000, epoch_max_delay_s=600.0))
                while not addr:
                    await asyncio.sleep(0.01)
                reader, writer = await asyncio.open_connection(
                    addr["host"], addr["port"])

                async def call(batch):
                    for req in batch:
                        writer.write((json.dumps(req) + "\n").encode())
                    await writer.drain()
                    got = []
                    while len(got) < len(batch):
                        line = await asyncio.wait_for(
                            reader.readline(), 30)
                        got.append(json.loads(line.decode()))
                    return got

                # The flush response is read back before the follow-up
                # query is sent, so the weight read is deterministic.
                out = await call([
                    {"id": 1, "op": "stats"},
                    {"id": 2, "op": "delete_edges", "edges": [[0, 1]]},
                    {"id": 3, "op": "flush"},
                ])
                out += await call([{"id": 4, "op": "msf_weight"}])
                out += await call([{"id": 5, "op": "shutdown"}])
                writer.close()
                summary = await asyncio.wait_for(server, 30)
                return out, summary

        out, summary = asyncio.run(main())
        by_id = {r["id"]: r for r in out}
        assert by_id[1]["result"]["n_edges"] == 2
        assert by_id[2]["ok"] and by_id[3]["result"]["committed"]
        assert by_id[4]["result"]["weight"] == 6
        assert by_id[5]["ok"]
        assert summary["requests"] == 5 and summary["errors"] == 0


class TestResetAudit:
    """Satellite: repeated session recomputes must not leak (ISSUE 10)."""

    @pytest.mark.parametrize("engine", ["default", "multiprocess"])
    def test_hundred_recomputes_bound_pool_and_shm(self, engine):
        from repro.kernels.pool import _default_max_bytes

        shm_before = len(os.listdir("/dev/shm")) \
            if os.path.isdir("/dev/shm") else None
        rows = _triples(np.random.default_rng(4), 100, 300)
        spec = _fork_engine() if engine == "multiprocess" else None
        budget = _default_max_bytes()
        with GraphSession(100, rows, n_procs=4, engine=spec) as s:
            weight = s.view.total_weight
            for i in range(100):
                report = s.recompute_full()
                assert report.total_weight == weight
                held = s.machine.pool.held_bytes
                assert held <= budget, (
                    f"iteration {i}: pool parked {held} bytes, over the "
                    f"REPRO_POOL_MAX_MB budget of {budget}")
            assert s.view.version == 100
        if shm_before is not None:
            assert len(os.listdir("/dev/shm")) == shm_before, (
                "shared-memory segments leaked by repeated recomputes")
