"""Tests for the offline critical-path analyzer (repro.obs.critpath).

Two kinds of coverage: hand-built toy traces whose longest path and slack
are known in closed form (including p=1 and empty-PE layouts), and real
algorithm runs where the analyzer's exactness claims are checked
bit-for-bit -- the path length must equal the machine's final simulated
clock, the path segments must tile ``[0, length]`` exactly, and the phase
attribution must equal ``Machine.phase_times``.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import BoruvkaConfig, minimum_spanning_forest
from repro.faults import FaultSchedule
from repro.graphgen import gen_family
from repro.obs import TruncatedTraceError, analyze, chrome_trace
from repro.obs.critpath import (
    collect_instances,
    critical_path,
    phase_breakdown,
    round_imbalance,
)
from repro.simmpi import Machine


def _ev(ph, name, cat, rank, ts, rnd=-1, phase=None, value=None):
    """Build one tracer-shaped event tuple."""
    return (ph, name, cat, rank, ts, 0.0, rnd, phase, value)


def _collective(name, entries, cost, rnd=0, phase=None):
    """Toy collective: B events at per-rank entry clocks, E at sync+cost."""
    sync = max(t for _, t in entries)
    out = [_ev("B", name, "collective", r, t, rnd, phase)
           for r, t in entries]
    out += [_ev("E", name, "collective", r, sync + cost, rnd, phase)
            for r, _ in entries]
    return out


def _toy_trace():
    """Three PEs, two collectives; longest path known by construction.

    rank1 computes until 3.0 (the allreduce straggler, sync 3.0, cost
    0.5); rank2 then computes until 5.0 (the allgather straggler, sync
    5.0, cost 0.25).  Critical path: rank1 compute [0,3] -> allreduce
    [3,3.5] -> rank2 compute [3.5,5] -> allgather [5,5.25].
    """
    events = _collective("allreduce", [(0, 1.0), (1, 3.0), (2, 2.0)],
                         cost=0.5, rnd=0)
    events += _collective("allgather", [(0, 3.5), (1, 3.5), (2, 5.0)],
                          cost=0.25, rnd=1)
    return events


class TestToyTraces:
    def test_known_longest_path(self):
        a = analyze(_toy_trace(), n_procs=3)
        assert a.length == 5.25
        assert a.n_procs == 3
        # Chronological tiling of [0, length].
        assert a.segments[0].start == 0.0
        assert a.segments[-1].end == a.length
        for prev, cur in zip(a.segments, a.segments[1:]):
            assert prev.end == cur.start
        # The known alternation, with the known straggler hand-offs.
        kinds = [(s.kind, s.name) for s in a.segments]
        assert kinds == [("compute", "local"),
                         ("collective", "allreduce"),
                         ("compute", "local"),
                         ("collective", "allgather")]
        assert a.segments[0].rank == 1  # allreduce straggler
        assert a.segments[2].rank == 2  # allgather straggler
        assert a.by_kind["compute"] == pytest.approx(3.0 + 1.5)
        assert a.by_kind["collective"] == pytest.approx(0.75)
        assert a.by_op == {"allreduce": pytest.approx(0.5),
                           "allgather": pytest.approx(0.25)}

    def test_known_slack(self):
        # A later instant on rank 0 moves the anchor and opens tail slack
        # on the other PEs.
        events = _toy_trace()
        events.append(_ev("i", "checkpoint", "mark", 0, 6.0))
        a = analyze(events, n_procs=3)
        assert a.length == 6.0
        assert a.anchor_rank == 0
        assert a.per_pe_slack == [0.0, 0.75, 0.75]

    def test_instance_reconstruction(self):
        instances = collect_instances(_toy_trace())
        assert [i.name for i in instances] == ["allreduce", "allgather"]
        first = instances[0]
        assert first.ranks == (0, 1, 2)
        assert first.sync_time == 3.0
        assert first.straggler == 1
        assert first.finish == 3.5

    def test_single_pe(self):
        events = [_ev("B", "solve", "phase", 0, 0.0),
                  _ev("E", "solve", "phase", 0, 2.5)]
        a = analyze(events, n_procs=1)
        assert a.length == 2.5
        assert a.anchor_rank == 0
        assert [s.kind for s in a.segments] == ["compute"]
        assert a.by_kind["compute"] == 2.5
        assert a.phase_times == {"solve": 2.5}

    def test_empty_pe_layout(self):
        # Only ranks 0-1 ever emit events on a 4-PE machine: the silent
        # PEs carry full-length slack and a zero finish clock.
        events = _collective("allreduce", [(0, 1.0), (1, 2.0)], cost=0.5)
        a = analyze(events, n_procs=4)
        assert a.length == 2.5
        assert a.per_pe_finish == [2.5, 2.5, 0.0, 0.0]
        assert a.per_pe_slack == [0.0, 0.0, 2.5, 2.5]

    def test_empty_trace(self):
        a = analyze([], n_procs=2)
        assert a.length == 0.0
        assert a.segments == []
        assert a.anchor_rank == -1

    def test_phase_replay_nesting(self):
        # Outer phase frozen while the inner runs: exclusive accounting.
        events = [_ev("B", "outer", "phase", 0, 0.0),
                  _ev("B", "inner", "phase", 0, 1.0),
                  _ev("E", "inner", "phase", 0, 1.75),
                  _ev("E", "outer", "phase", 0, 3.0)]
        totals, per_pe = phase_breakdown(events, 1)
        assert totals == {"outer": pytest.approx(2.25),
                          "inner": pytest.approx(0.75)}
        assert per_pe["outer"].shape == (1,)

    def test_round_imbalance_attribution(self):
        rounds = round_imbalance(_toy_trace(), 3)
        assert [r.round for r in rounds] == [0, 1]
        r0 = rounds[0]
        # Round 0 windows: rank0 [1.0, 3.5], rank1 [3.0, 3.5], rank2
        # [2.0, 3.5] -- rank0 is the straggler-by-span (2.5 s).
        assert r0.max_s == pytest.approx(2.5)
        assert r0.straggler == 0
        assert r0.attribution["wait"] == pytest.approx(2.0)
        assert r0.attribution["comm"] == pytest.approx(0.5)
        assert r0.attribution["compute"] == pytest.approx(0.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False),
                    min_size=1, max_size=12))
    def test_round_max_at_least_mean(self, durations):
        # Property: per-round max PE time >= mean PE time, whatever the
        # per-rank windows look like.
        events = []
        for rank, d in enumerate(durations):
            events.append(_ev("B", "work", "phase", rank, 1.0, rnd=0))
            events.append(_ev("E", "work", "phase", rank, 1.0 + d, rnd=0))
        rounds = round_imbalance(events, len(durations))
        assert len(rounds) == 1
        assert rounds[0].max_s >= rounds[0].mean_s
        assert rounds[0].max_s >= rounds[0].p99_s - 1e-12


def _traced_run(procs=16, n=2048, m=8192, faults=False, **machine_kw):
    """One traced boruvka run; returns (machine, result)."""
    g = gen_family("GNM", n, m, seed=1)
    machine = Machine(procs, trace_events=True, faults=faults, **machine_kw)
    res = minimum_spanning_forest(g.distribute(machine),
                                  algorithm="boruvka",
                                  config=BoruvkaConfig(base_case_min=64))
    return machine, res


class TestRealRuns:
    def test_length_is_final_clock_bit_for_bit(self):
        machine, _ = _traced_run()
        a = analyze(machine.events)
        assert a.length == machine.elapsed()
        # Segments tile [0, length] exactly -- float equality, no eps.
        assert a.segments[0].start == 0.0
        assert a.segments[-1].end == a.length
        for prev, cur in zip(a.segments, a.segments[1:]):
            assert prev.end == cur.start

    def test_phase_attribution_matches_machine(self):
        machine, _ = _traced_run()
        totals, per_pe = phase_breakdown(list(machine.events.events()),
                                         machine.n_procs)
        assert totals == machine.phase_times
        for name, arr in machine.phase_times_per_pe.items():
            assert np.array_equal(per_pe[name], arr)

    def test_path_kinds_sum_to_length(self):
        machine, _ = _traced_run()
        a = analyze(machine.events)
        assert (a.by_kind["compute"] + a.by_kind["collective"]
                == pytest.approx(a.length, rel=1e-12))
        # The startup estimate is bounded by the collective share.
        assert 0.0 <= a.by_kind["startup_alpha_est"] <= a.by_kind["collective"]

    def test_single_pe_run(self):
        machine, _ = _traced_run(procs=1, n=256, m=1024)
        a = analyze(machine.events)
        assert a.length == machine.elapsed()
        assert a.per_pe_slack == [0.0]

    def test_replayed_rounds_from_fail_stop_schedule(self):
        # A fail-stop schedule forces round replays; the analyzer must
        # still account for the whole (longer) makespan exactly.
        schedule = FaultSchedule.parse("seed=3, pe_fail@1:5")
        machine, res = _traced_run(faults=schedule)
        clean_machine, clean = _traced_run()
        assert res.total_weight == clean.total_weight
        assert machine.elapsed() > clean_machine.elapsed()
        a = analyze(machine.events)
        assert a.length == machine.elapsed()
        assert a.segments[-1].end == a.length

    def test_analyze_from_chrome_payload(self):
        machine, _ = _traced_run()
        payload = chrome_trace(machine.events, {"n_procs": machine.n_procs})
        a = analyze(payload)
        assert a.n_procs == machine.n_procs
        # Microsecond round-trip: equal to within one ulp-ish tolerance.
        assert a.length == pytest.approx(machine.elapsed(), rel=1e-9)

    def test_summary_is_json_ready(self):
        import json

        machine, _ = _traced_run(procs=8, n=512, m=2048)
        summary = analyze(machine.events).summary()
        assert json.loads(json.dumps(summary))["length_s"] == \
            machine.elapsed()


class TestTruncatedStreams:
    def test_tracer_refused(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CAP", "64")
        machine, _ = _traced_run(procs=8, n=512, m=2048)
        assert machine.events.dropped > 0
        with pytest.raises(TruncatedTraceError):
            analyze(machine.events)

    def test_chrome_payload_refused(self):
        payload = {"traceEvents": [],
                   "otherData": {"dropped_events": 17}}
        with pytest.raises(TruncatedTraceError):
            analyze(payload)

    def test_critical_path_guard_terminates(self):
        # Degenerate zero-duration collectives must not loop forever.
        events = _collective("allreduce", [(0, 1.0), (1, 1.0)], cost=0.0)
        segments, length, anchor, _, _ = critical_path(events, 2)
        assert length == 1.0
        assert segments[-1].end == length
