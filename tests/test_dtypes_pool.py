"""Boundary tests for the dtype-narrowing policy and the buffer pool.

Covers the two pieces of :mod:`repro.kernels` that PR 7's hot-path rewiring
leans on (docs/kernels.md):

* :mod:`repro.kernels.dtypes` -- the uint32/int64 decision at the exact
  ``2**32`` boundary, the ``REPRO_DTYPES=wide`` escape hatch, payload
  narrowing, and the logical-bytes accounting that keeps simulated costs
  dtype-independent;
* ``packed_lexsort`` permutation dtype and the packed-capacity overflow
  boundary (the ``np.lexsort`` fallback at capacity ``>= 2**62``);
* :class:`repro.kernels.pool.BufferPool` -- hit/miss accounting, the
  parked-bytes budget, foreign-array rejection and active-pool swapping.
"""

import numpy as np
import pytest

from repro.kernels import packed_lexsort
from repro.kernels.dtypes import (
    UINT32_MAX,
    index_dtype,
    logical_itemsize,
    logical_nbytes,
    narrow,
    narrow_payload,
    narrowing_enabled,
    widen,
)
from repro.kernels.pool import BufferPool, active_pool, set_active_pool


class TestDtypePolicy:
    @pytest.fixture(autouse=True)
    def _narrow_mode(self, monkeypatch):
        """Pin narrow mode: these tests probe the policy itself, so they
        must not inherit a differential ``REPRO_DTYPES=wide`` run's env."""
        monkeypatch.setenv("REPRO_DTYPES", "narrow")

    def test_index_dtype_boundary(self):
        assert index_dtype(0) == np.uint32
        assert index_dtype(UINT32_MAX) == np.uint32
        assert index_dtype(UINT32_MAX + 1) == np.int64
        # Negative bound means "no elements": narrow is safe.
        assert index_dtype(-1) == np.uint32

    def test_index_dtype_wide_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "wide")
        assert not narrowing_enabled()
        assert index_dtype(0) == np.int64
        assert index_dtype(UINT32_MAX) == np.int64

    def test_bad_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "sometimes")
        with pytest.raises(ValueError, match="REPRO_DTYPES"):
            narrowing_enabled()

    def test_narrow_boundary_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "narrow")
        a = np.array([0, UINT32_MAX], dtype=np.int64)
        assert narrow(a).dtype == np.uint32
        over = np.array([0, UINT32_MAX + 1], dtype=np.int64)
        assert narrow(over).dtype == np.int64
        neg = np.array([-1, 5], dtype=np.int64)
        assert narrow(neg).dtype == np.int64
        # Caller-supplied bound skips the scans but must still gate.
        assert narrow(a, max_value=UINT32_MAX).dtype == np.uint32
        assert narrow(over, max_value=UINT32_MAX + 1).dtype == np.int64
        # Non-integer arrays never narrow.
        f = np.array([1.0, 2.0])
        assert narrow(f).dtype == np.float64

    def test_narrow_wide_mode_widens(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "wide")
        a = np.array([1, 2], dtype=np.uint32)
        assert narrow(a).dtype == np.int64
        assert widen(a).dtype == np.int64

    def test_narrow_payload_mixed(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "narrow")
        out = narrow_payload({
            "small": np.array([3, 4], dtype=np.int64),
            "big": np.array([2**40], dtype=np.int64),
            "neg": np.array([-2], dtype=np.int64),
            "scalar": 9,
            "flag": True,
        })
        assert out["small"].dtype == np.uint32
        assert out["big"].dtype == np.int64
        assert out["neg"].dtype == np.int64
        assert out["scalar"] == 9 and out["flag"] is True

    def test_narrow_payload_wide_mode_is_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "wide")
        payload = {"a": np.array([1], dtype=np.int64)}
        assert narrow_payload(payload) is payload

    def test_logical_bytes_dtype_independent(self):
        """The simulated machine charges 8 bytes/element either way."""
        wide = np.arange(10, dtype=np.int64)
        thin = wide.astype(np.uint32)
        assert logical_nbytes(wide) == logical_nbytes(thin) == 80
        assert logical_itemsize(np.uint32) == logical_itemsize(np.int64) == 8
        # Non-integer payloads keep their true width.
        assert logical_nbytes(np.zeros(3, dtype=np.float64)) == 24
        assert logical_itemsize(np.float64) == 8


class TestPackedLexsortDtypes:
    def test_perm_dtype_narrow(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "narrow")
        rng = np.random.default_rng(3)
        cols = (rng.integers(0, 50, 1000), rng.integers(0, 50, 1000))
        perm = packed_lexsort(cols)
        assert perm.dtype == np.uint32
        np.testing.assert_array_equal(perm, np.lexsort(cols))

    def test_perm_dtype_wide(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPES", "wide")
        rng = np.random.default_rng(3)
        cols = (rng.integers(0, 50, 100), rng.integers(0, 50, 100))
        perm = packed_lexsort(cols)
        assert perm.dtype == np.int64
        np.testing.assert_array_equal(perm, np.lexsort(cols))

    @pytest.mark.parametrize("col_bound", [
        # Capacity = product of (max+1) per column plus the tie-break range.
        # Just under the 2**62 packed-capacity guard: packed path.
        2**30 - 1,
        # Straddles it: np.lexsort fallback.  Both must match np.lexsort.
        2**31,
    ])
    def test_overflow_boundary_matches_lexsort(self, col_bound):
        rng = np.random.default_rng(11)
        n = 512
        lo = rng.integers(0, 1000, n).astype(np.int64)
        hi = rng.integers(0, 5, n).astype(np.int64)
        # Pin the extremes so the capacity computation sees the bound.
        lo[0], lo[1] = 0, col_bound
        hi[0], hi[1] = 0, col_bound
        perm = packed_lexsort((lo, hi))
        ref = np.lexsort((lo, hi))
        # Permutations may differ on ties; the sorted keys must not.
        np.testing.assert_array_equal(hi[perm], hi[ref])
        np.testing.assert_array_equal(lo[perm], lo[ref])
        # And packed_lexsort must remain a stable sort like np.lexsort.
        np.testing.assert_array_equal(perm, ref)


class TestBufferPool:
    def test_hit_miss_accounting(self):
        pool = BufferPool(max_bytes=1 << 20)
        a = pool.take(100, np.int64)
        assert a.shape == (100,) and a.dtype == np.int64
        assert pool.misses == 1 and pool.hits == 0
        pool.give(a)
        assert pool.held_bytes > 0
        b = pool.take(100, np.int64)
        assert pool.hits == 1
        # Same size class (128-capacity block) serves nearby sizes too.
        pool.give(b)
        c = pool.take(120, np.int64)
        assert pool.hits == 2
        pool.give(c)
        stats = pool.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["bytes_reused"] == (100 + 120) * 8

    def test_dtype_keys_are_distinct(self):
        pool = BufferPool(max_bytes=1 << 20)
        a = pool.take(64, np.int64)
        pool.give(a)
        b = pool.take(64, np.uint32)
        assert pool.hits == 0 and pool.misses == 2
        pool.give(b)

    def test_budget_refusal(self):
        pool = BufferPool(max_bytes=128)
        small = pool.take(8, np.int64)  # 16-element block: fits the budget
        big = pool.take(1024, np.int64)
        pool.give(small)
        assert pool.held_bytes == 128
        pool.give(big)  # over budget -> dropped
        assert pool.held_bytes == 128

    def test_give_tolerates_none_and_foreign(self):
        pool = BufferPool(max_bytes=1 << 20)
        pool.give(None)
        pool.give(np.empty(100))  # 100 is not a power of two: dropped
        assert pool.held_bytes == 0

    def test_clear_drops_everything(self):
        pool = BufferPool(max_bytes=1 << 20)
        pool.give(pool.take(256, np.int64))
        assert pool.held_bytes > 0
        pool.clear()
        assert pool.held_bytes == 0
        # Stats survive a clear; only the parked blocks go.
        assert pool.misses == 1

    def test_set_active_pool_clears_displaced(self):
        prev = active_pool()
        mine = BufferPool(max_bytes=1 << 20)
        try:
            set_active_pool(mine)
            assert active_pool() is mine
            mine.give(mine.take(512, np.int64))
            assert mine.held_bytes > 0
        finally:
            set_active_pool(prev)
        # Displaced pools hand their parked blocks back to the allocator.
        assert mine.held_bytes == 0
        assert active_pool() is prev

    def test_attach_sink_mirrors_counters(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        pool = BufferPool(max_bytes=1 << 20)
        pool.attach_sink(registry)
        a = pool.take(128, np.int64)
        pool.give(a)
        b = pool.take(128, np.int64)
        pool.give(b)
        counters = registry.counters()
        assert counters["pool/misses"].value == 1
        assert counters["pool/hits"].value == 1
        # Reuse counts the requested bytes; allocation counts the whole
        # power-of-two block (the next class up from a 128-element ask).
        assert counters["pool/bytes_reused"].value == 128 * 8
        assert counters["pool/bytes_allocated"].value == 256 * 8
