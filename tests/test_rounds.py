"""The unified round scheduler (repro.core.rounds, docs/rounds.md).

Covers the scheduler's own lifecycle contracts with a scripted dummy body
(counting, convergence conventions, divergence, fault refusal), the
canonical round-count accounting of every ported driver (the regression
pins for the Awerbuch-Shiloach termination-round bug and MND-MST's
``level - 1`` numbering), the fail-stop conformance invariant -- any
surviving ``pe_fail`` schedule recovers the bit-identical MSF weight on
every round-looped algorithm -- and the degenerate shapes: zero-round
graphs, ``max_rounds`` divergence, replay-budget exhaustion, p=1 and
empty-PE machines, across execution engines.
"""

import numpy as np
import pytest

from repro.competitors import (
    awerbuch_shiloach_msf,
    dist_kruskal,
    dist_prim,
    mnd_mst,
)
from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    MSTRun,
    RoundBody,
    RoundScheduler,
    RoundStats,
    UnsupportedFaultSchedule,
    distributed_boruvka,
    distributed_filter_boruvka,
)
from repro.faults import UnrecoverableFault
from repro.graphgen import gen_family
from repro.seq import msf_weight
from repro.simmpi import Machine

GRAPH = gen_family("GNM", 400, 1600, seed=7)
REF_WEIGHT = msf_weight(GRAPH.edges, GRAPH.n_vertices)

#: Every driver ported onto the RoundScheduler, with the config it takes.
ROUND_LOOPED = {
    "boruvka": (distributed_boruvka, BoruvkaConfig(base_case_min=32)),
    "filter-boruvka": (distributed_filter_boruvka,
                       FilterConfig(boruvka=BoruvkaConfig(base_case_min=32))),
    "awerbuch-shiloach": (awerbuch_shiloach_msf, None),
    "mnd-mst": (mnd_mst, None),
    "dist-prim": (dist_prim, None),
}


def run_algo(name, p=6, threads=1, faults=False, engine=None, graph=GRAPH):
    algo, cfg = ROUND_LOOPED[name]
    machine = Machine(p, threads=threads, sanitize=True, faults=faults,
                      engine=engine)
    dg = graph.distribute(machine)
    result = algo(dg, cfg) if cfg is not None else algo(dg)
    return machine, result


# ----------------------------------------------------------------------
# Scheduler lifecycle with a scripted body (no graph machinery).
# ----------------------------------------------------------------------

class ScriptedBody(RoundBody):
    """Converges after ``work_rounds`` rounds, via the chosen mechanism."""

    label = "scripted"
    divergence_error = "scripted body exceeded max_rounds"

    def __init__(self, work_rounds, mode="prologue"):
        self.work_rounds = work_rounds
        self.mode = mode
        self.seen = []

    def prologue(self, round_no):
        """Stop before the round when in prologue mode and work is done."""
        if self.mode == "prologue" and len(self.seen) >= self.work_rounds:
            return None
        return RoundStats(100 - round_no, 1000)

    def round(self, round_no):
        """Record the round id; converge in-round when in round mode."""
        self.seen.append(round_no)
        return (self.mode == "round"
                and len(self.seen) >= self.work_rounds)


class TestSchedulerLifecycle:
    def test_prologue_convergence_counts_completed_rounds_only(self):
        run = MSTRun(Machine(4, sanitize=True), BoruvkaConfig())
        body = ScriptedBody(3, mode="prologue")
        assert RoundScheduler(run, 64).run_rounds(body) == 3
        assert body.seen == [0, 1, 2]
        assert run.rounds == 3

    def test_in_round_convergence_counts_the_detecting_round(self):
        # The Awerbuch-Shiloach convention: the round that detects
        # convergence did real work and collectives, so it counts.
        run = MSTRun(Machine(4, sanitize=True), BoruvkaConfig())
        body = ScriptedBody(3, mode="round")
        assert RoundScheduler(run, 64).run_rounds(body) == 3
        assert run.rounds == 3

    def test_zero_round_body(self):
        run = MSTRun(Machine(4, sanitize=True), BoruvkaConfig())
        body = ScriptedBody(0, mode="prologue")
        assert RoundScheduler(run, 64).run_rounds(body) == 0
        assert body.seen == []
        assert run.rounds == 0

    def test_round_ids_continue_across_invocations(self):
        # Filter-Borůvka's kernel phase: per-invocation budgets, canonical
        # ids counting on across schedulers sharing one run.
        run = MSTRun(Machine(4, sanitize=True), BoruvkaConfig())
        first = ScriptedBody(2, mode="prologue")
        RoundScheduler(run, 64).run_rounds(first)
        second = ScriptedBody(2, mode="prologue")
        assert RoundScheduler(run, 64).run_rounds(second) == 2
        assert second.seen == [2, 3]
        assert run.rounds == 4

    def test_max_rounds_divergence_raises_body_message(self):
        run = MSTRun(Machine(4, sanitize=True), BoruvkaConfig())
        body = ScriptedBody(10 ** 9, mode="prologue")
        with pytest.raises(RuntimeError, match="scripted body exceeded"):
            RoundScheduler(run, 5).run_rounds(body)
        assert body.seen == [0, 1, 2, 3, 4]

    def test_fail_stop_schedule_without_checkpoint_state_refused(self):
        machine = Machine(4, sanitize=True, faults="seed=0, pe_fail@0:1")
        run = MSTRun(machine, BoruvkaConfig())
        with pytest.raises(UnsupportedFaultSchedule, match="scripted"):
            RoundScheduler(run, 64).run_rounds(ScriptedBody(3))

    def test_comm_only_schedule_runs_without_checkpoint_state(self):
        machine = Machine(4, sanitize=True, faults="seed=0, straggle=0.5")
        run = MSTRun(machine, BoruvkaConfig())
        assert RoundScheduler(run, 64).run_rounds(ScriptedBody(3)) == 3


# ----------------------------------------------------------------------
# Canonical round accounting (the satellite bug fixes, pinned).
# ----------------------------------------------------------------------

class TestRoundAccounting:
    """Regression pins on one fixed instance (GNM n=400 m=1600 seed=7).

    Awerbuch-Shiloach's pre-scheduler driver ``break``-ed out of its final
    iteration -- which runs the full resolve/scan work plus the
    candidate allreduce -- *before* counting it, reporting 4 here; MND-MST
    reported its 1-based ``level``; distributed Prim reported 0 always.
    All now follow the scheduler's canonical counting.
    """

    PINS = {
        "boruvka": 2,
        "filter-boruvka": 2,
        "awerbuch-shiloach": 5,   # was 4: detection round now counts
        "mnd-mst": 1,             # one 6-PE merge level into the leader
        "dist-prim": 400,         # was 0: n-1 growth + per-component detect
    }

    @pytest.mark.parametrize("name", sorted(PINS))
    def test_reported_rounds(self, name):
        _, result = run_algo(name)
        assert result.rounds == self.PINS[name], (
            f"{name} reported {result.rounds} rounds, expected "
            f"{self.PINS[name]}")
        assert result.total_weight == REF_WEIGHT

    @pytest.mark.parametrize("engine", ["inprocess", "batched"])
    def test_accounting_is_engine_invariant(self, engine):
        for name in ("awerbuch-shiloach", "mnd-mst"):
            _, result = run_algo(name, engine=engine)
            assert result.rounds == self.PINS[name]

    def test_single_pe_machine(self):
        # p=1: Borůvka contracts everything locally (0 distributed
        # rounds); AS still needs its full pointer-jumping rounds.
        _, r = run_algo("boruvka", p=1)
        assert r.rounds == 0 and r.total_weight == REF_WEIGHT
        _, r = run_algo("awerbuch-shiloach", p=1)
        assert r.rounds == 5 and r.total_weight == REF_WEIGHT

    def test_empty_pe_rounds(self):
        # More PEs than needed leaves some blocks empty every round; the
        # scheduler and the bodies must not special-case them.
        tiny = gen_family("GNM", 12, 20, seed=3)
        for name in sorted(ROUND_LOOPED):
            _, result = run_algo(name, p=8, graph=tiny)
            assert result.total_weight == msf_weight(tiny.edges,
                                                     tiny.n_vertices), name

    def test_zero_round_graphs(self):
        # Below the base-case threshold nothing enters the round loop.
        small = gen_family("GNM", 24, 48, seed=1)
        _, result = run_algo("boruvka", p=2, graph=small)
        assert result.rounds == 0
        assert result.total_weight == msf_weight(small.edges,
                                                 small.n_vertices)

    def test_divergence_guard_fires_for_real_drivers(self):
        # A 1-round scheduler budget (cfg.max_rounds stays large, so the
        # in-round pointer doubling is unaffected) must hit the guard.
        from repro.core.boruvka import BoruvkaRoundBody

        machine = Machine(6, sanitize=True)
        dg = GRAPH.distribute(machine)
        run = MSTRun(machine, BoruvkaConfig(base_case_min=32))
        with pytest.raises(RuntimeError, match="exceeded max_rounds"):
            RoundScheduler(run, 1).run_rounds(BoruvkaRoundBody(dg, run))
        machine = Machine(6, sanitize=True)
        dg = GRAPH.distribute(machine)
        with pytest.raises(RuntimeError, match="failed to converge"):
            awerbuch_shiloach_msf(dg, BoruvkaConfig(max_rounds=2))


# ----------------------------------------------------------------------
# Fail-stop conformance: no silent no-op recovery, ever.
# ----------------------------------------------------------------------

class TestFailStopConformance:
    """Satellite invariant: a fail-stop schedule either recovers to the
    bit-identical MSF weight or raises -- never a silent no-op."""

    @pytest.mark.parametrize("name", sorted(ROUND_LOOPED))
    def test_surviving_pe_fail_recovers_exact_weight(self, name):
        machine, faulty = run_algo(name, p=6, faults="seed=5, pe_fail@0:2")
        assert faulty.total_weight == REF_WEIGHT, (
            f"{name} lost MSF weight across a fail-stop recovery")
        assert machine.faults.summary().get("pe_fail", 0) == 1
        assert machine.faults.summary().get("round_replay", 0) == 1
        _, clean = run_algo(name, p=6)
        assert faulty.elapsed > clean.elapsed, (
            f"{name} recovered for free (no simulated-time charge)")

    def test_mnd_deep_hierarchy_recovers_mid_merge(self):
        machine = Machine(8, sanitize=True, faults="seed=5, pe_fail@2:3")
        dg = GRAPH.distribute(machine)
        result = mnd_mst(dg, group_size=2)  # 3 merge levels: 8 -> 4 -> 2 -> 1
        assert result.total_weight == REF_WEIGHT
        assert machine.faults.summary()["round_replay"] == 1

    def test_dist_kruskal_refuses_fail_stop_schedules(self):
        machine = Machine(6, sanitize=True, faults="seed=5, pe_fail@0:2")
        dg = GRAPH.distribute(machine)
        with pytest.raises(UnsupportedFaultSchedule, match="dist-kruskal"):
            dist_kruskal(dg)

    def test_dist_kruskal_accepts_comm_only_schedules(self):
        machine = Machine(6, sanitize=True,
                          faults="seed=5, msg_drop=0.05, straggle=0.05")
        dg = GRAPH.distribute(machine)
        assert dist_kruskal(dg).total_weight == REF_WEIGHT

    @pytest.mark.parametrize("name", ["awerbuch-shiloach", "dist-prim"])
    def test_replay_budget_exhaustion_mid_scheduler(self, name):
        spec = ("seed=0, pe_fail@1:0, pe_fail@1:1, pe_fail=0.97, "
                "max_replays=2")
        with pytest.raises(UnrecoverableFault, match="max_replays=2"):
            run_algo(name, p=6, faults=spec)

    def test_replays_do_not_consume_max_rounds(self):
        # One replayed round must not push a tight-but-sufficient
        # max_rounds budget over the divergence guard.
        _, clean = run_algo("awerbuch-shiloach", p=6)
        machine = Machine(6, sanitize=True, faults="seed=5, pe_fail@1:3")
        dg = GRAPH.distribute(machine)
        result = awerbuch_shiloach_msf(
            dg, BoruvkaConfig(max_rounds=clean.rounds))
        assert result.total_weight == REF_WEIGHT
        assert result.rounds == clean.rounds
        assert machine.faults.summary()["round_replay"] == 1
