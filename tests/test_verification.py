"""Tests for distributed MSF verification (repro.core.verification)."""

import numpy as np
import pytest

from repro.core import (
    BoruvkaConfig,
    distributed_boruvka,
    minimum_spanning_forest,
    verify_distributed_msf,
)
from repro.dgraph import DistGraph, Edges
from repro.simmpi import Machine

from helpers import random_simple_graph


def _fresh(g, p):
    return DistGraph.from_global_edges(Machine(p), g)


class TestAcceptsCorrectMsf:
    @pytest.mark.parametrize("alg", ["boruvka", "filter-boruvka",
                                     "awerbuch-shiloach", "mnd-mst"])
    def test_every_algorithm_passes(self, alg, rng):
        n = 50
        g = random_simple_graph(rng, n, 250)
        res = minimum_spanning_forest(_fresh(g, 5), algorithm=alg)
        report = verify_distributed_msf(_fresh(g, 5), res.msf_parts)
        assert report.ok, (alg, report)
        assert report.n_forest_edges == len(res.msf_edges())

    def test_disconnected_graph(self, rng):
        a = random_simple_graph(rng, 15, 50)
        b = random_simple_graph(rng, 15, 50)
        g = Edges.concat([a, Edges(b.u + 15, b.v + 15, b.w)]).sort_lex()
        g.id[:] = np.arange(len(g))
        res = distributed_boruvka(_fresh(g, 4),
                                  BoruvkaConfig(base_case_min=8))
        report = verify_distributed_msf(_fresh(g, 4), res.msf_parts)
        assert report.ok
        assert report.n_components >= 2

    def test_empty_msf_of_empty_graph(self):
        machine = Machine(3)
        dg = DistGraph(machine, [Edges.empty()] * 3)
        report = verify_distributed_msf(dg, [Edges.empty()] * 3)
        assert report.ok
        assert report.n_forest_edges == 0


class TestRejectsBrokenCandidates:
    def _setup(self, rng, n=40, m=200, p=4):
        g = random_simple_graph(rng, n, m)
        res = distributed_boruvka(_fresh(g, p),
                                  BoruvkaConfig(base_case_min=8))
        return g, res.msf_parts, p

    def test_rejects_cycle(self, rng):
        g, parts, p = self._setup(rng)
        # Duplicate one forest edge onto another PE -> cycle.
        victim = next(i for i in range(p) if len(parts[i]))
        extra = parts[victim].take(np.array([0]))
        parts[(victim + 1) % p] = Edges.concat(
            [parts[(victim + 1) % p], extra])
        report = verify_distributed_msf(_fresh(g, p), parts)
        assert not report.is_forest
        assert not report.ok

    def test_rejects_non_spanning(self, rng):
        g, parts, p = self._setup(rng)
        victim = next(i for i in range(p) if len(parts[i]))
        parts[victim] = parts[victim].take(
            np.arange(1, len(parts[victim])))  # drop one forest edge
        report = verify_distributed_msf(_fresh(g, p), parts)
        assert not report.spans
        assert not report.ok

    def test_rejects_non_minimum(self, rng):
        # Swap a forest edge for a strictly heavier non-forest edge that
        # reconnects the same components.
        n = 30
        g = random_simple_graph(rng, n, 300)
        p = 4
        res = distributed_boruvka(_fresh(g, p),
                                  BoruvkaConfig(base_case_min=8))
        msf = res.msf_edges()
        msf_keys = set(zip(msf.w.tolist(),
                           np.minimum(msf.u, msf.v).tolist(),
                           np.maximum(msf.u, msf.v).tolist()))
        from repro.seq import UnionFind

        # Find a heavier replacement: a non-tree edge (u,v) plus the
        # heaviest tree edge on its cycle to remove.
        from repro.seq.kkt import max_weight_on_paths

        non_tree = [k for k in range(len(g))
                    if (int(g.w[k]), int(min(g.u[k], g.v[k])),
                        int(max(g.u[k], g.v[k]))) not in msf_keys]
        swapped = None
        for k in non_tree:
            path_max = max_weight_on_paths(msf, n,
                                           np.array([g.u[k]]),
                                           np.array([g.v[k]]))[0]
            if g.w[k] > path_max:
                # Remove the heaviest path edge, insert edge k.
                drop = None
                for t in range(len(msf)):
                    if msf.w[t] == path_max:
                        drop = t
                        break
                keep = np.ones(len(msf), dtype=bool)
                keep[drop] = False
                candidate = Edges.concat([
                    msf.take(keep),
                    g.take(np.array([k]))])
                uf = UnionFind(n)
                if uf.union_edges(candidate.u, candidate.v).all():
                    swapped = candidate
                    break
        if swapped is None:
            pytest.skip("no strictly-heavier swap found for this seed")
        # Distribute the bogus forest arbitrarily over PEs.
        parts = [swapped.take(np.arange(i, len(swapped), p))
                 for i in range(p)]
        report = verify_distributed_msf(_fresh(g, p), parts)
        assert report.is_forest and report.spans
        assert not report.is_minimum


@pytest.fixture
def rng():
    return np.random.default_rng(157)
