"""Tests for the experiment harness (repro.analysis) and phase timers."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentResult,
    csv_lines,
    run_algorithm,
    series_table,
    speedup_summary,
    strong_scaling,
    weak_scaling,
)
from repro.graphgen import gen_gnm
from repro.simmpi.timers import PHASES, PhaseBreakdown, format_table, normalise


class TestRunAlgorithm:
    def test_basic_run(self):
        g = gen_gnm(128, 512, seed=1)
        r = run_algorithm(g, "boruvka", 4)
        assert r.status == "ok"
        assert r.elapsed > 0
        assert r.throughput == pytest.approx(r.m_directed / r.elapsed)
        assert r.cores == 4

    def test_threads_reflected_in_cores(self):
        g = gen_gnm(128, 512, seed=1)
        r = run_algorithm(g, "boruvka", 2, threads=8)
        assert r.cores == 16

    def test_oom_is_captured(self):
        g = gen_gnm(256, 2048, seed=1)
        r = run_algorithm(g, "mnd-mst", 16, memory_limit_bytes=20_000)
        assert r.status == "oom"
        assert not np.isfinite(r.elapsed)
        assert np.isnan(r.throughput)

    def test_verify_flag(self):
        g = gen_gnm(128, 512, seed=1)
        run_algorithm(g, "filter-boruvka", 4, verify=True)


class TestSweeps:
    def test_weak_scaling_sizes_grow(self):
        results = weak_scaling(
            lambda n, m, seed: gen_gnm(n, m, seed=seed),
            ["boruvka"], [2, 4], 32, 128,
        )
        assert [r.n_vertices for r in results] == [64, 128]

    def test_weak_scaling_competitor_cap(self):
        results = weak_scaling(
            lambda n, m, seed: gen_gnm(n, m, seed=seed),
            ["boruvka", "mnd-mst"], [2, 8], 32, 128,
            competitor_core_cap=2,
        )
        algs_at_8 = {r.algorithm for r in results if r.cores == 8}
        assert "mnd-mst" not in algs_at_8
        assert "boruvka" in algs_at_8

    def test_strong_scaling_fixed_instance(self):
        g = gen_gnm(256, 1024, seed=2)
        results = strong_scaling(g, ["boruvka"], [2, 4, 8])
        assert all(r.n_vertices == 256 for r in results)
        assert [r.cores for r in results] == [2, 4, 8]


class TestTables:
    def _results(self):
        return [
            ExperimentResult("g", "a", 4, 4, 1, 10, 20, 1.0),
            ExperimentResult("g", "a", 8, 8, 1, 10, 20, 0.5),
            ExperimentResult("g", "b", 4, 4, 1, 10, 20, 2.0),
            ExperimentResult("g", "b", 8, 8, 1, 10, 20, float("nan"),
                             status="oom"),
        ]

    def test_series_table_layout(self):
        t = series_table(self._results())
        lines = t.splitlines()
        assert lines[0].split() == ["cores", "a", "b"]
        assert "oom" in t

    def test_csv_lines(self):
        lines = csv_lines(self._results())
        assert len(lines) == 5
        assert lines[0].startswith("instance,algorithm,cores")

    def test_speedup_summary(self):
        res = self._results()
        # "a" is ours by prefix; "b" is a competitor: 2x at 4 cores.
        s = speedup_summary(res, ours_prefixes=("a",))
        assert "2x faster than b" in s

    def test_speedup_summary_no_overlap(self):
        res = [ExperimentResult("g", "a", 4, 4, 1, 10, 20, 1.0)]
        assert speedup_summary(res, ours_prefixes=("zzz",)) \
            == "no competitor overlap"


class TestTimers:
    def test_breakdown_total(self):
        b = PhaseBreakdown("x", {"min_edges": 1.0, "filter": 2.0})
        assert b.total == 3.0
        filled = b.filled()
        assert filled["contraction"] == 0.0
        assert set(filled) == set(PHASES)

    def test_normalise_by_slowest(self):
        a = PhaseBreakdown("a", {"min_edges": 1.0})
        b = PhaseBreakdown("b", {"min_edges": 4.0})
        na, nb = normalise([a, b])
        assert nb.total == pytest.approx(1.0)
        assert na.total == pytest.approx(0.25)

    def test_normalise_empty(self):
        out = normalise([PhaseBreakdown("a", {})])
        assert out[0].total == 0.0

    def test_format_table(self):
        a = PhaseBreakdown("alg-1", {"min_edges": 1.0, "filter": 0.5})
        t = format_table([a])
        assert "min_edges" in t and "alg-1" in t and "total" in t
