"""Cross-verification of the sequential MST baselines (repro.seq)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dgraph import Edges
from repro.seq import (
    FilterStats,
    boruvka_msf,
    filter_boruvka_msf,
    filter_kruskal_msf,
    kruskal_msf,
    msf_weight,
    networkx_msf_weight,
    prim_msf,
    verify_msf,
)

from helpers import random_distinct_weight_graph, random_simple_graph

ALGORITHMS = [
    kruskal_msf,
    prim_msf,
    boruvka_msf,
    lambda e, n: filter_kruskal_msf(e, n, base_case_size=16),
    lambda e, n: filter_boruvka_msf(e, n, base_case_size=16),
]
NAMES = ["kruskal", "prim", "boruvka", "filter-kruskal", "filter-boruvka"]


class TestCrossAgreement:
    @pytest.mark.parametrize("alg,name", zip(ALGORITHMS, NAMES), ids=NAMES)
    def test_weight_matches_networkx(self, alg, name, rng):
        for trial in range(8):
            n = int(rng.integers(3, 60))
            g = random_simple_graph(rng, n, 4 * n)
            if len(g) == 0:
                continue
            msf = alg(g, n)
            verify_msf(msf, g, n, check_edges=False)
            assert msf.total_weight() == networkx_msf_weight(g, n), (name,
                                                                     trial)

    @pytest.mark.parametrize("alg,name", zip(ALGORITHMS, NAMES), ids=NAMES)
    def test_identical_edge_set_with_distinct_weights(self, alg, name, rng):
        for trial in range(5):
            n = int(rng.integers(3, 50))
            g = random_distinct_weight_graph(rng, n, 4 * n)
            if len(g) == 0:
                continue
            ref = kruskal_msf(g, n).canonical_triples()
            got = alg(g, n).canonical_triples()
            assert np.array_equal(got, ref), (name, trial)


class TestEdgeCases:
    def test_empty_graph(self):
        for alg in ALGORITHMS:
            assert len(alg(Edges.empty(), 5)) == 0

    def test_single_edge(self):
        e = Edges(np.array([0, 1]), np.array([1, 0]), np.array([7, 7]))
        for alg, name in zip(ALGORITHMS, NAMES):
            msf = alg(e, 2)
            assert msf.total_weight() == 7, name
            assert len(msf) == 1, name

    def test_path_graph_keeps_everything(self):
        n = 20
        u = np.arange(n - 1)
        e = Edges(u, u + 1, np.arange(1, n))
        for alg, name in zip(ALGORITHMS, NAMES):
            msf = alg(e, n)
            assert len(msf) == n - 1, name
            assert msf.total_weight() == e.total_weight(), name

    def test_cycle_drops_heaviest(self):
        n = 10
        u = np.arange(n)
        v = (u + 1) % n
        w = np.arange(1, n + 1)
        e = Edges(u, v, w)
        for alg, name in zip(ALGORITHMS, NAMES):
            msf = alg(e, n)
            assert len(msf) == n - 1, name
            assert msf.total_weight() == w.sum() - n, name

    def test_parallel_edges_keep_lightest(self):
        e = Edges(np.array([0, 0, 0]), np.array([1, 1, 1]),
                  np.array([9, 2, 5]))
        for alg, name in zip(ALGORITHMS, NAMES):
            assert alg(e, 2).total_weight() == 2, name

    def test_disconnected_forest(self, rng):
        a = random_simple_graph(rng, 10, 20)
        b = random_simple_graph(rng, 10, 20)
        b2 = Edges(b.u + 10, b.v + 10, b.w)
        g = Edges.concat([a, b2]).sort_lex()
        for alg, name in zip(ALGORITHMS, NAMES):
            verify_msf(alg(g, 20), g, 20, check_edges=False)

    def test_out_of_range_labels_rejected(self):
        e = Edges(np.array([0]), np.array([5]), np.array([1]))
        with pytest.raises(ValueError):
            kruskal_msf(e, 3)

    def test_msf_weight_helper(self, rng):
        g = random_simple_graph(rng, 20, 60)
        assert msf_weight(g, 20) == kruskal_msf(g, 20).total_weight()


class TestFilterStats:
    def test_stats_populated(self, rng):
        g = random_simple_graph(rng, 100, 1000)
        stats = FilterStats()
        filter_boruvka_msf(g, 100, base_case_size=64, stats=stats)
        assert stats.base_case_calls >= 1
        assert stats.edges_touched >= len(g)
        assert stats.partition_rounds >= 1

    def test_filtering_drops_edges_on_dense_input(self, rng):
        g = random_simple_graph(rng, 40, 1500)
        stats = FilterStats()
        filter_boruvka_msf(g, 40, base_case_size=32, stats=stats)
        assert stats.filtered_out > 0


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 40), st.integers(1, 5), st.integers(0, 10 ** 6))
    def test_all_algorithms_same_weight(self, n, density, seed):
        rng = np.random.default_rng(seed)
        g = random_simple_graph(rng, n, density * n)
        if len(g) == 0:
            return
        weights = {name: alg(g, n).total_weight()
                   for alg, name in zip(ALGORITHMS, NAMES)}
        assert len(set(weights.values())) == 1, weights

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 10 ** 6))
    def test_msf_is_spanning_forest(self, n, seed):
        rng = np.random.default_rng(seed)
        g = random_simple_graph(rng, n, 3 * n)
        if len(g) == 0:
            return
        verify_msf(kruskal_msf(g, n), g, n, check_edges=False)


@pytest.fixture
def rng():
    return np.random.default_rng(23)
