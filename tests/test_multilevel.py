"""Tests for the d-dimensional indirect all-to-all (repro.simmpi.multilevel)."""

import numpy as np
import pytest

from repro.simmpi import (
    ALLTOALL_METHODS,
    Comm,
    Machine,
    alltoallv_direct,
    alltoallv_multilevel,
    grid_sides,
)


def _random_send(rng, p, max_rows=10):
    sendbufs, sendcounts = [], []
    for _ in range(p):
        k = int(rng.integers(0, max_rows))
        dest = np.sort(rng.integers(0, p, k))
        counts = np.zeros(p, dtype=np.int64)
        np.add.at(counts, dest, 1)
        sendbufs.append(rng.integers(0, 10 ** 6, (k, 3)))
        sendcounts.append(counts)
    return sendbufs, sendcounts


class TestGridSides:
    @pytest.mark.parametrize("p", [1, 2, 7, 16, 27, 100, 1000])
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_covers_p(self, p, d):
        sides = grid_sides(p, d)
        assert len(sides) == d
        assert np.prod(sides) >= p
        assert sorted(sides, reverse=True) == sides

    def test_square_for_d2(self):
        assert grid_sides(64, 2) == [8, 8]

    def test_cube_for_d3(self):
        assert grid_sides(27, 3) == [3, 3, 3]

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            grid_sides(8, 0)


class TestEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 4, 5, 8, 13, 16, 27, 32])
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_matches_direct(self, p, d, rng):
        sendbufs, sendcounts = _random_send(rng, p)
        ref, ref_c = alltoallv_direct(Comm(Machine(p)), sendbufs, sendcounts)
        got, got_c = alltoallv_multilevel(Comm(Machine(p)), sendbufs,
                                          sendcounts, d=d)
        for j in range(p):
            assert np.array_equal(ref[j], got[j]), (p, d, j)
            assert np.array_equal(ref_c[j], got_c[j])

    def test_registered_as_grid3(self, rng):
        assert "grid3" in ALLTOALL_METHODS
        p = 9
        sendbufs, sendcounts = _random_send(rng, p)
        ref, _ = alltoallv_direct(Comm(Machine(p)), sendbufs, sendcounts)
        got, _ = ALLTOALL_METHODS["grid3"](Comm(Machine(p)), sendbufs,
                                           sendcounts)
        for j in range(p):
            assert np.array_equal(ref[j], got[j])


class TestCostShape:
    def test_startup_drops_with_indirection(self):
        """At alpha-bound workloads every indirect variant beats direct."""
        p = 512
        bufs = [np.zeros((p, 1), dtype=np.int64) for _ in range(p)]
        cnts = [np.ones(p, dtype=np.int64) for _ in range(p)]
        times = {}
        for d in (2, 3):
            m = Machine(p)
            alltoallv_multilevel(Comm(m), bufs, cnts, d=d)
            times[d] = m.elapsed()
        m = Machine(p)
        alltoallv_direct(Comm(m), bufs, cnts)
        times["direct"] = m.elapsed()
        assert times[2] < times["direct"]
        assert times[3] < times["direct"]

    def test_volume_multiplied_by_d(self, rng):
        p = 27
        sendbufs, sendcounts = _random_send(rng, p, max_rows=20)
        m2, m3 = Machine(p), Machine(p)
        alltoallv_multilevel(Comm(m2), sendbufs, sendcounts, d=2)
        alltoallv_multilevel(Comm(m3), sendbufs, sendcounts, d=3)
        # d hops -> roughly d x the single-hop volume (virtual-PE snapping
        # can shorten some routes, so allow slack).
        assert m3.bytes_communicated > m2.bytes_communicated


@pytest.fixture
def rng():
    return np.random.default_rng(119)
