"""Property-based differential tests (DESIGN invariant 1).

Random graphs from every generator family, distributed over random machine
shapes and algorithm configurations, must yield the same MSF weight and
component structure as sequential Kruskal -- for distributed Borůvka,
Filter-Borůvka and both competitor reimplementations.  The whole layer runs
under the runtime sanitizer (``sanitize=True`` explicitly, so it holds even
with ``--simsan=off``), making every example also a distribution-discipline
and cost-accounting check.

The default ("quick") hypothesis profile keeps this inside the tier-1 time
budget; the ``slow``-marked soak tests and the ``deep`` profile
(``REPRO_HYPOTHESIS_PROFILE=deep pytest -m slow``) explore much further.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.competitors import awerbuch_shiloach_msf, dist_prim, mnd_mst
from repro.engines import MultiprocessEngine
from repro.faults import UnrecoverableFault
from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    distributed_boruvka,
    distributed_filter_boruvka,
)
from repro.dgraph import DistGraph
from repro.graphgen import FAMILIES, gen_family
from repro.obs.export import chrome_trace, metrics_to_dict
from repro.seq import msf_weight, spans_same_components
from repro.simmpi import Machine

DEEP_EXAMPLES = int(os.environ.get("REPRO_DEEP_EXAMPLES", "60"))


@st.composite
def instances(draw, max_n=120):
    """A generated graph plus a random machine shape."""
    family = draw(st.sampled_from(FAMILIES))
    n = draw(st.integers(16, max_n))
    m = draw(st.integers(n // 2, 4 * n))
    seed = draw(st.integers(0, 2 ** 16))
    p = draw(st.integers(1, 8))
    threads = draw(st.sampled_from([1, 2, 8]))
    return gen_family(family, n, m, seed=seed), p, threads


@st.composite
def boruvka_configs(draw):
    return BoruvkaConfig(
        alltoall=draw(st.sampled_from(
            ["auto", "direct", "grid", "grid3", "hypercube"])),
        sorter=draw(st.sampled_from(["auto", "hypercube", "samplesort"])),
        local_preprocessing=draw(st.booleans()),
        base_case_min=draw(st.sampled_from([8, 64, 512])),
    )


def check_against_kruskal(algo, graph, p, threads, cfg=None):
    """Run ``algo`` distributed and compare with sequential Kruskal."""
    machine = Machine(p, threads=threads, sanitize=True)
    dg = graph.distribute(machine)
    result = algo(dg, cfg) if cfg is not None else algo(dg)
    ref_weight = msf_weight(graph.edges, graph.n_vertices)
    assert result.total_weight == ref_weight, (
        f"{algo.__name__} weight {result.total_weight} != Kruskal "
        f"{ref_weight} (p={p}, threads={threads}, cfg={cfg})")
    msf = result.msf_edges()
    assert spans_same_components(msf, graph.edges, graph.n_vertices), (
        f"{algo.__name__} forest spans different components "
        f"(p={p}, threads={threads}, cfg={cfg})")


class TestDifferential:
    @given(inst=instances(), cfg=boruvka_configs())
    def test_boruvka_matches_kruskal(self, inst, cfg):
        graph, p, threads = inst
        check_against_kruskal(distributed_boruvka, graph, p, threads, cfg)

    @given(inst=instances(), inner=boruvka_configs(),
           min_epp=st.sampled_from([8, 64, 256]))
    def test_filter_boruvka_matches_kruskal(self, inst, inner, min_epp):
        graph, p, threads = inst
        cfg = FilterConfig(boruvka=inner, min_edges_per_proc=min_epp)
        check_against_kruskal(distributed_filter_boruvka, graph, p, threads,
                              cfg)

    @given(inst=instances(max_n=80))
    def test_awerbuch_shiloach_matches_kruskal(self, inst):
        graph, p, threads = inst
        check_against_kruskal(awerbuch_shiloach_msf, graph, p, threads)

    @given(inst=instances(max_n=80))
    def test_mnd_matches_kruskal(self, inst):
        graph, p, threads = inst
        check_against_kruskal(mnd_mst, graph, p, threads)


class TestFaultIdentity:
    """Fault-subsystem identities over random instances (docs/faults.md).

    An *empty* schedule (``REPRO_FAULTS`` set but injecting nothing) must be
    arithmetically invisible -- bit-for-bit identical simulated seconds, not
    just the same weight -- and any *surviving* schedule must recover to the
    bit-identical MSF weight while charging strictly more time than the
    fault-free run.
    """

    @given(inst=instances(max_n=100), cfg=boruvka_configs(),
           fseed=st.integers(0, 2 ** 16),
           algo=st.sampled_from([distributed_boruvka,
                                 distributed_filter_boruvka,
                                 awerbuch_shiloach_msf, mnd_mst]))
    def test_empty_schedule_is_bitwise_identity(self, inst, cfg, fseed,
                                                algo):
        graph, p, threads = inst
        takes_cfg = algo is distributed_boruvka

        def run(faults):
            m = Machine(p, threads=threads, sanitize=True, faults=faults)
            dg = graph.distribute(m)
            return algo(dg, cfg) if takes_cfg else algo(dg)

        r0 = run(False)
        r1 = run(f"seed={fseed}")
        assert r1.total_weight == r0.total_weight
        assert r1.elapsed == r0.elapsed, (
            f"an empty fault schedule changed {algo.__name__}'s simulated "
            f"time ({r1.elapsed} != {r0.elapsed})")
        assert r1.phase_times == r0.phase_times

    @given(inst=instances(max_n=100), fseed=st.integers(0, 2 ** 16),
           rate=st.sampled_from([0.01, 0.05, 0.15]))
    def test_surviving_schedule_recovers_bit_identical_weight(
            self, inst, fseed, rate):
        graph, p, threads = inst
        cfg = BoruvkaConfig(base_case_min=8)
        base = Machine(p, threads=threads, sanitize=True, faults=False)
        r0 = distributed_boruvka(graph.distribute(base), cfg)
        # Generous retry/replay budgets: this property is about *surviving*
        # schedules, so draws that exhaust recovery anyway are rejected.
        spec = (f"seed={fseed}, pe_fail={rate}, msg_drop={rate / 4}, "
                f"corrupt={rate}, straggle={rate}, retries=10, "
                f"max_replays=64")
        faulted = Machine(p, threads=threads, sanitize=True, faults=spec)
        try:
            r1 = distributed_boruvka(graph.distribute(faulted), cfg)
        except UnrecoverableFault:
            assume(False)
        assert r1.total_weight == r0.total_weight, (
            f"recovery changed the MSF weight under {spec!r}")
        if faulted.faults.counts:
            assert r1.elapsed > r0.elapsed, (
                f"{faulted.faults.summary()} injected but recovered for "
                "free (no simulated-time charge)")

    @given(inst=instances(max_n=60), fseed=st.integers(0, 2 ** 16),
           algo=st.sampled_from([awerbuch_shiloach_msf, mnd_mst,
                                 dist_prim]))
    @settings(max_examples=15, deadline=None)
    def test_scheduler_recovers_every_round_looped_algorithm(
            self, inst, fseed, algo):
        # The unified RoundScheduler owns the checkpoint/replay bracket for
        # all round-looped drivers, so the bit-identical-weight recovery
        # property must hold for the competitors exactly as for Borůvka.
        graph, p, threads = inst
        base = Machine(p, threads=threads, sanitize=True, faults=False)
        r0 = algo(graph.distribute(base))
        spec = f"seed={fseed}, pe_fail=0.02, retries=10, max_replays=64"
        faulted = Machine(p, threads=threads, sanitize=True, faults=spec)
        try:
            r1 = algo(graph.distribute(faulted))
        except UnrecoverableFault:
            assume(False)
        assert r1.total_weight == r0.total_weight, (
            f"{algo.__name__} recovery changed the MSF weight under "
            f"{spec!r}")
        if faulted.faults.counts:
            assert r1.elapsed > r0.elapsed, (
                f"{algo.__name__}: {faulted.faults.summary()} injected "
                "but recovered for free (no simulated-time charge)")


def _engine_of(name):
    """Resolve an engine axis draw to a Machine engine spec."""
    if name == "multiprocess":
        # Force offload so the workers actually execute the per-PE tasks
        # (fork keeps this process's task registry visible to them).
        return MultiprocessEngine(min_offload_bytes=0, start_method="fork")
    return name


class TestEngineIdentity:
    """Engine axis (docs/engines.md): random instances, bit-identical runs.

    Any execution engine must be simulated-behaviour identical to the
    batched reference on arbitrary instances, and two multiprocess runs of
    the same seed must export byte-identical deterministic-mode metrics and
    trace dumps.
    """

    @given(inst=instances(max_n=100), cfg=boruvka_configs(),
           engine=st.sampled_from(["inprocess", "multiprocess"]),
           algo=st.sampled_from([distributed_boruvka,
                                 distributed_filter_boruvka,
                                 awerbuch_shiloach_msf, mnd_mst]))
    @settings(max_examples=15, deadline=None)
    def test_engine_is_bitwise_identity(self, inst, cfg, engine, algo):
        graph, p, threads = inst
        takes_cfg = algo is distributed_boruvka

        def run(spec):
            with Machine(p, threads=threads, sanitize=True,
                         engine=spec) as m:
                dg = graph.distribute(m)
                r = algo(dg, cfg) if takes_cfg else algo(dg)
                return (r.total_weight, m.clock.copy(),
                        dict(m.phase_times))

        ref = run("batched")
        out = run(_engine_of(engine))
        assert out[0] == ref[0], (
            f"{algo.__name__} weight differs under the {engine} engine")
        assert np.array_equal(out[1], ref[1]), (
            f"{algo.__name__} simulated clocks differ under {engine}")
        assert out[2] == ref[2], (
            f"{algo.__name__} phase times differ under {engine}")

    @given(inst=instances(max_n=80), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_multiprocess_exports_are_deterministic(self, inst, seed):
        graph, p, threads = inst
        cfg = BoruvkaConfig(base_case_min=16)

        def run():
            with Machine(p, threads=threads, seed=seed, trace_events=True,
                         engine=_engine_of("multiprocess")) as m:
                dg = graph.distribute(m)
                distributed_boruvka(dg, cfg)
                return (
                    json.dumps(chrome_trace(m.events, deterministic=True),
                               sort_keys=True),
                    json.dumps(
                        metrics_to_dict(m.metrics, deterministic=True),
                        sort_keys=True),
                )

        first, second = run(), run()
        assert first[0] == second[0], (
            "deterministic trace export differs between same-seed "
            "multiprocess runs")
        assert first[1] == second[1], (
            "deterministic metrics export differs between same-seed "
            "multiprocess runs")


class TestServingDifferential:
    """Serving epochs (docs/serving.md): random churn == sequential Kruskal.

    A persistent :class:`~repro.serve.GraphSession` driven through random
    insert/delete epochs must report the exact sequential-Kruskal MSF
    weight after every commit -- whichever incremental strategy each epoch
    picked, on either execution engine, and with a fail-stop fault
    schedule injecting during the epoch recomputes.
    """

    @given(seed=st.integers(0, 2 ** 16), n=st.integers(16, 64),
           engine=st.sampled_from(["batched", "multiprocess"]),
           faulted=st.booleans(), epochs=st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_churn_epochs_match_kruskal(self, seed, n, engine, faulted,
                                        epochs):
        from repro.dgraph.edges import Edges
        from repro.serve import GraphSession

        rng = np.random.default_rng(seed)
        live = {}
        while len(live) < 2 * n:
            a, b = (int(x) for x in rng.integers(0, n, 2))
            if a != b:
                live[(min(a, b), max(a, b))] = \
                    int(rng.integers(1, 1_000_000))
        rows = [[u, v, w] for (u, v), w in sorted(live.items())]
        faults = (f"seed={seed % 97}, pe_fail=0.04, retries=10, "
                  f"max_replays=64") if faulted else False
        cfg = BoruvkaConfig(base_case_min=16, base_case_factor=1,
                            local_preprocessing=False)

        def expected():
            u = np.array([k[0] for k in live], dtype=np.int64)
            v = np.array([k[1] for k in live], dtype=np.int64)
            w = np.array(list(live.values()), dtype=np.int64)
            return msf_weight(Edges(u, v, w), n) if len(live) else 0

        try:
            with GraphSession(n, rows, n_procs=int(rng.integers(1, 6)),
                              cfg=cfg, faults=faults,
                              engine=_engine_of(engine)) as session:
                for _ in range(epochs):
                    ops = []
                    for _ in range(int(rng.integers(1, 5))):
                        pairs = sorted(live)
                        if rng.random() < 0.5 and pairs:
                            pair = pairs[int(rng.integers(0, len(pairs)))]
                            ops.append(("delete", [list(pair)]))
                            live.pop(pair)
                        else:
                            while True:
                                a, b = (int(x) for x in
                                        rng.integers(0, n, 2))
                                key = (min(a, b), max(a, b))
                                if a != b and key not in live:
                                    break
                            w = int(rng.integers(1, 1_000_000))
                            ops.append(("insert", [[key[0], key[1], w]]))
                            live[key] = w
                    outcomes, _ = session.apply_epoch(ops)
                    assert all(o is None for o in outcomes), outcomes
                    assert session.view.total_weight == expected(), (
                        f"serving weight diverged from Kruskal (seed="
                        f"{seed}, engine={engine}, faulted={faulted})")
        except UnrecoverableFault:
            assume(False)


@pytest.mark.slow
class TestDifferentialDeep:
    """Soak variants: bigger graphs, more examples (pytest -m slow)."""

    @settings(max_examples=DEEP_EXAMPLES, deadline=None)
    @given(inst=instances(max_n=400), cfg=boruvka_configs())
    def test_boruvka_matches_kruskal_deep(self, inst, cfg):
        graph, p, threads = inst
        check_against_kruskal(distributed_boruvka, graph, p, threads, cfg)

    @settings(max_examples=DEEP_EXAMPLES, deadline=None)
    @given(inst=instances(max_n=400),
           min_epp=st.sampled_from([8, 64, 1000]))
    def test_filter_boruvka_matches_kruskal_deep(self, inst, min_epp):
        graph, p, threads = inst
        check_against_kruskal(distributed_filter_boruvka, graph, p, threads,
                              FilterConfig(min_edges_per_proc=min_epp))

    @settings(max_examples=DEEP_EXAMPLES, deadline=None)
    @given(inst=instances(max_n=250),
           algo=st.sampled_from([awerbuch_shiloach_msf, mnd_mst]))
    def test_competitors_match_kruskal_deep(self, inst, algo):
        graph, p, threads = inst
        check_against_kruskal(algo, graph, p, threads)
