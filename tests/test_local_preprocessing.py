"""Tests for local preprocessing (repro.core.local_preprocessing)."""

import numpy as np
import pytest

from repro.core import BoruvkaConfig, MSTRun, local_preprocessing
from repro.dgraph import DistGraph, Edges
from repro.graphgen import gen_grid2d, gen_gnm
from repro.seq import UnionFind, kruskal_msf
from repro.simmpi import Machine

from helpers import random_simple_graph


def _run(g, p, n, cfg=None):
    machine = Machine(p)
    dg = DistGraph.from_global_edges(machine, g)
    cfg = cfg or BoruvkaConfig(preprocessing_min_local_fraction=0.0)
    run = MSTRun(machine, cfg)
    out = local_preprocessing(dg, run)
    return machine, run, out


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_recorded_plus_remainder_completes_to_msf(self, p, rng):
        """Contracted edges + Kruskal on the remainder == full MSF weight."""
        n = 40
        g = random_simple_graph(rng, n, 200)
        machine, run, out = _run(g, p, n)
        uf = UnionFind(n)
        weight = 0
        for i in range(p):
            for eid, w in run.collected(i):
                pos = int(np.flatnonzero(g.id == eid)[0])
                assert uf.union(int(g.u[pos]), int(g.v[pos])), "cycle"
                weight += int(w)
        # Complete with the remaining distributed edges (original endpoints
        # irrelevant: relabelled endpoints connect the same components).
        remaining = Edges.concat(out.parts)
        order = remaining.weight_order()
        srt = remaining.take(order)
        for k in range(len(srt)):
            if uf.union(int(srt.u[k]), int(srt.v[k])):
                weight += int(srt.w[k])
        assert weight == kruskal_msf(g, n).total_weight()

    def test_output_graph_is_valid(self, rng):
        g = random_simple_graph(rng, 50, 400)
        machine, run, out = _run(g, 5, 50)
        # Valid lexicographic global order (the invariant the repair step
        # re-establishes).
        out._check_local_sorted()
        out._check_global_sorted()

    def test_no_self_loops_or_duplicate_pairs(self, rng):
        g = random_simple_graph(rng, 50, 400)
        machine, run, out = _run(g, 5, 50)
        for part in out.parts:
            assert (part.u != part.v).all()
            pairs = list(zip(part.u.tolist(), part.v.tolist()))
            assert len(pairs) == len(set(pairs))

    def test_shared_vertex_labels_survive(self, rng):
        g = random_simple_graph(rng, 40, 400)
        machine = Machine(6)
        dg = DistGraph.from_global_edges(machine, g)  # shared allowed
        shared = set(dg.shared_vertex_set().tolist())
        run = MSTRun(machine, BoruvkaConfig(
            preprocessing_min_local_fraction=0.0))
        out = local_preprocessing(dg, run)
        remaining_vertices = set(
            np.unique(np.concatenate(
                [np.concatenate([p.u, p.v]) for p in out.parts if len(p)]
            )).tolist()) if any(len(p) for p in out.parts) else set()
        # A shared vertex with remaining edges keeps its own label.
        for s in shared:
            for part in out.parts:
                mask = part.u == s
                # s's edges may have been deduped away, but s must never
                # appear relabelled INTO something else: verify via the
                # label maps recorded for the sink.
        # (The real assertion: no label map entry changes a shared vertex.)
        machine2 = Machine(6)
        dg2 = DistGraph.from_global_edges(machine2, g)
        run2 = MSTRun(machine2, BoruvkaConfig(
            preprocessing_min_local_fraction=0.0))
        events = []
        run2.label_sink = lambda pe, vs, ls: events.append((vs, ls))
        local_preprocessing(dg2, run2)
        for vs, ls in events:
            for v in vs:
                assert int(v) not in shared


class TestRules:
    def test_skip_rule_low_locality(self):
        # GNM across many PEs: few local edges -> preprocessing skipped.
        g = gen_gnm(128, 512, seed=3)
        machine = Machine(16)
        dg = g.distribute(machine)
        run = MSTRun(machine, BoruvkaConfig())  # default 10% rule
        out = local_preprocessing(dg, run)
        assert out is dg  # untouched
        assert run.total_mst_edges() == 0

    def test_grid_contracts_most_vertices(self):
        g = gen_grid2d(16, 16, seed=1)
        machine = Machine(4)
        dg = g.distribute(machine)
        n_before = dg.global_vertex_count()
        run = MSTRun(machine, BoruvkaConfig())
        out = local_preprocessing(dg, run)
        n_after = out.global_vertex_count()
        assert n_after < n_before / 4

    def test_filter_enhancement_same_result(self, rng):
        n = 40
        g = random_simple_graph(rng, n, 300)
        res = {}
        for use_filter in (True, False):
            cfg = BoruvkaConfig(preprocessing_min_local_fraction=0.0,
                                preprocessing_filter=use_filter)
            machine, run, out = _run(g, 4, n, cfg)
            res[use_filter] = sum(int(w) for i in range(4)
                                  for _, w in run.collected(i))
        assert res[True] == res[False]

    def test_single_pe_contracts_everything(self, rng):
        n = 30
        g = random_simple_graph(rng, n, 200)
        machine, run, out = _run(g, 1, n)
        # With one PE everything is local: full MSF found, no edges remain.
        assert out.global_edge_count() == 0
        total = sum(int(w) for _, w in run.collected(0))
        assert total == kruskal_msf(g, n).total_weight()


@pytest.fixture
def rng():
    return np.random.default_rng(71)
