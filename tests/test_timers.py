"""Tests for the phase-timer helpers (repro.simmpi.timers)."""

import numpy as np
import pytest

from repro.simmpi import Machine
from repro.simmpi.timers import (
    PHASES,
    PhaseBreakdown,
    collect_breakdown,
    format_table,
    normalise,
)


class TestCollectBreakdown:
    def test_snapshot_from_machine(self):
        m = Machine(3)
        with m.phase("min_edges"):
            m.charge(np.array([1.0, 2.0, 0.5]))
        with m.phase("filter"):
            m.charge(1.0)
        bd = collect_breakdown(m, "boruvka-1")
        assert bd.algorithm == "boruvka-1"
        assert bd.times["min_edges"] == pytest.approx(2.0)
        assert bd.times["filter"] == pytest.approx(1.0)

    def test_snapshot_is_independent_copy(self):
        m = Machine(1)
        with m.phase("min_edges"):
            m.charge(1.0)
        bd = collect_breakdown(m, "x")
        with m.phase("min_edges"):
            m.charge(5.0)
        assert bd.times["min_edges"] == pytest.approx(1.0)


class TestCanonicalPhases:
    def test_algorithm_phases_are_canonical(self):
        """Every phase name the drivers use is in the Fig. 6 list."""
        from repro.analysis import run_algorithm
        from repro.core import BoruvkaConfig, FilterConfig
        from repro.graphgen import gen_gnm

        g = gen_gnm(256, 2048, seed=30)
        for alg, cfg in (("boruvka", BoruvkaConfig(base_case_min=32)),
                         ("filter-boruvka",
                          FilterConfig(boruvka=BoruvkaConfig(
                              base_case_min=32)))):
            r = run_algorithm(g, alg, 8, config=cfg)
            assert set(r.phase_times) <= set(PHASES), (alg, r.phase_times)

    def test_breakdown_filled_covers_all(self):
        bd = PhaseBreakdown("a", {"filter": 1.0})
        assert list(bd.filled()) == list(PHASES)


class TestNormaliseEdgeCases:
    def test_empty_sequence(self):
        assert normalise([]) == []

    def test_single_breakdown_normalises_to_one(self):
        out = normalise([PhaseBreakdown("a", {"min_edges": 4.0})])
        assert out[0].total == pytest.approx(1.0)

    def test_format_table_skips_all_zero_phases(self):
        t = format_table([PhaseBreakdown("a", {"min_edges": 1.0,
                                               "filter": 0.0})])
        assert "min_edges" in t
        assert "relabel" not in t
