"""Tests for the phase-timer helpers (repro.simmpi.timers)."""

import numpy as np
import pytest

from repro.simmpi import Machine
from repro.simmpi.timers import (
    PHASES,
    PhaseBreakdown,
    collect_breakdown,
    format_table,
    normalise,
)


class TestCollectBreakdown:
    def test_snapshot_from_machine(self):
        m = Machine(3)
        with m.phase("min_edges"):
            m.charge(np.array([1.0, 2.0, 0.5]))
        with m.phase("filter"):
            m.charge(1.0)
        bd = collect_breakdown(m, "boruvka-1")
        assert bd.algorithm == "boruvka-1"
        assert bd.times["min_edges"] == pytest.approx(2.0)
        assert bd.times["filter"] == pytest.approx(1.0)

    def test_snapshot_is_independent_copy(self):
        m = Machine(1)
        with m.phase("min_edges"):
            m.charge(1.0)
        bd = collect_breakdown(m, "x")
        with m.phase("min_edges"):
            m.charge(5.0)
        assert bd.times["min_edges"] == pytest.approx(1.0)


class TestCanonicalPhases:
    def test_algorithm_phases_are_canonical(self):
        """Every phase name the drivers use is in the Fig. 6 list."""
        from repro.analysis import run_algorithm
        from repro.core import BoruvkaConfig, FilterConfig
        from repro.graphgen import gen_gnm

        g = gen_gnm(256, 2048, seed=30)
        for alg, cfg in (("boruvka", BoruvkaConfig(base_case_min=32)),
                         ("filter-boruvka",
                          FilterConfig(boruvka=BoruvkaConfig(
                              base_case_min=32)))):
            r = run_algorithm(g, alg, 8, config=cfg)
            assert set(r.phase_times) <= set(PHASES), (alg, r.phase_times)

    def test_breakdown_filled_covers_all(self):
        bd = PhaseBreakdown("a", {"filter": 1.0})
        assert list(bd.filled()) == list(PHASES)


class TestNormaliseEdgeCases:
    def test_empty_sequence(self):
        assert normalise([]) == []

    def test_single_breakdown_normalises_to_one(self):
        out = normalise([PhaseBreakdown("a", {"min_edges": 4.0})])
        assert out[0].total == pytest.approx(1.0)

    def test_format_table_skips_all_zero_phases(self):
        t = format_table([PhaseBreakdown("a", {"min_edges": 1.0,
                                               "filter": 0.0})])
        assert "min_edges" in t
        assert "relabel" not in t

    def test_normalise_all_zero_breakdowns_pass_through(self):
        """A configuration where nothing ran must not divide by zero."""
        bds = [PhaseBreakdown("a", {"min_edges": 0.0}),
               PhaseBreakdown("b", {})]
        out = normalise(bds)
        assert [b.times for b in out] == [{"min_edges": 0.0}, {}]
        # And the copies are independent of the inputs.
        out[0].times["min_edges"] = 9.0
        assert bds[0].times["min_edges"] == 0.0

    def test_normalise_preserves_relative_shares(self):
        out = normalise([PhaseBreakdown("slow", {"min_edges": 8.0}),
                         PhaseBreakdown("fast", {"min_edges": 2.0})])
        assert out[0].total == pytest.approx(1.0)
        assert out[1].total == pytest.approx(0.25)

    def test_format_table_all_zero_shows_totals_only(self):
        t = format_table([PhaseBreakdown("a", {"min_edges": 0.0})])
        lines = t.splitlines()
        assert lines[0].startswith("phase")
        assert lines[-1].startswith("total")
        assert "min_edges" not in t

    def test_format_table_noncanonical_phases_appended(self):
        """Competitor phases outside PHASES are listed, not dropped."""
        t = format_table([PhaseBreakdown("as", {"as_hook": 2.0,
                                                "as_resolve": 1.0,
                                                "min_edges": 3.0})])
        lines = t.splitlines()
        assert "as_hook" in t and "as_resolve" in t
        # Canonical first, then extras in sorted order.
        idx = {ph: i for i, ph in
               enumerate(line.split()[0] for line in lines)}
        assert idx["min_edges"] < idx["as_hook"] < idx["as_resolve"]

    def test_format_table_mapping_and_sequence_agree(self):
        bds = [PhaseBreakdown("x", {"filter": 1.0}),
               PhaseBreakdown("y", {"filter": 2.0})]
        assert format_table({"x": bds[0], "y": bds[1]}) \
            == format_table(bds)

    def test_format_table_digits(self):
        t = format_table([PhaseBreakdown("a", {"filter": 0.5})], digits=1)
        assert "0.5" in t and "0.500" not in t
