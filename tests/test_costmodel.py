"""Unit tests for the cost model (repro.simmpi.costmodel)."""

import math

import pytest

from repro.simmpi import CostModel


@pytest.fixture
def cm():
    return CostModel()


class TestThreadModel:
    def test_single_thread_is_unit(self, cm):
        assert cm.effective_threads(1) == 1.0

    def test_speedup_is_monotone(self, cm):
        speedups = [cm.effective_threads(t) for t in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_speedup_is_sublinear(self, cm):
        assert cm.effective_threads(8) < 8.0

    def test_efficiency_one_is_linear(self):
        cm = CostModel(thread_efficiency=1.0)
        assert cm.effective_threads(8) == 8.0


class TestPointToPoint:
    def test_startup_dominates_empty_message(self, cm):
        assert cm.p2p(0) == pytest.approx(cm.alpha)

    def test_linear_in_bytes(self, cm):
        d1 = cm.p2p(1000) - cm.p2p(0)
        d2 = cm.p2p(2000) - cm.p2p(1000)
        assert d1 == pytest.approx(d2)


class TestCollectives:
    def test_tree_grows_logarithmically(self, cm):
        t64 = cm.collective_tree(64, 0)
        t4096 = cm.collective_tree(4096, 0)
        # log2(4096)/log2(64) = 2 -> cost roughly doubles, not 64x.
        assert t4096 < 3 * t64

    def test_tree_single_pe_is_cheap(self, cm):
        assert cm.collective_tree(1, 10 ** 6) == pytest.approx(cm.c_call)

    def test_allgather_charges_total_bytes(self, cm):
        small = cm.allgather(16, 100)
        big = cm.allgather(16, 100_000)
        assert big > small

    def test_alltoall_dense_startup_linear_in_group(self, cm):
        t_small = cm.alltoall_dense(64, 0, 0)
        t_big = cm.alltoall_dense(4096, 0, 0)
        ratio = (t_big - cm.c_call) / (t_small - cm.c_call)
        assert ratio == pytest.approx(4096 / 64, rel=0.01)

    def test_alltoall_software_term_not_threaded(self, cm):
        # The beta_sw share is identical regardless of the threads argument
        # (funneled MPI): total cost must not depend on threads.
        assert cm.alltoall_dense(8, 1e6, 1e6, threads=1) == pytest.approx(
            cm.alltoall_dense(8, 1e6, 1e6, threads=8))


class TestLocalCharges:
    def test_scan_linear(self, cm):
        assert cm.scan(2000) == pytest.approx(2 * cm.scan(1000))

    def test_scan_threads_help(self, cm):
        assert cm.scan(1000, threads=8) < cm.scan(1000, threads=1)

    def test_sort_superlinear(self, cm):
        assert cm.sort(2048) > 2 * cm.sort(1024)

    def test_sort_trivial_inputs_free(self, cm):
        assert cm.sort(0) == 0.0
        assert cm.sort(1) == 0.0

    def test_sort_log_factor(self, cm):
        k = 1 << 16
        expected = cm.c_sort * k * math.log2(k)
        assert cm.sort(k) == pytest.approx(expected)

    def test_hash_ops_linear(self, cm):
        assert cm.hash_ops(300) == pytest.approx(3 * cm.hash_ops(100))


class TestCalibration:
    def test_communication_dominates_scan_per_edge(self, cm):
        """At the paper's scale moving an edge costs more than scanning it.

        This ordering (Section VII, Fig. 6: communication phases dominate on
        low-locality graphs) is what makes locality exploitation pay off.
        """
        edge_bytes = 32
        assert cm.beta * edge_bytes > cm.c_scan
