"""Smoke tests: the example scripts must run end to end.

Only the two fastest examples run here (the others exercise the same APIs
with bigger workloads and are covered by running them directly); each is
executed in-process via runpy with its own ``__main__`` guard honoured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "verified against Kruskal: OK" in out
    assert "filter-boruvka" in out


def test_image_segmentation(capsys):
    out = _run("image_segmentation.py", capsys)
    assert "segments found: 4" in out
    assert "OK" in out
