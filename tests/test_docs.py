"""Documentation-coverage enforcement.

Deliverable (e) requires doc comments on every public item: every module
under ``repro`` must carry a module docstring, and every public class and
function a docstring of its own.  This test walks the package so the
requirement cannot silently regress.
"""

import ast
import pathlib

import repro

SRC = pathlib.Path(repro.__file__).parent


def _public_defs(tree):
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)) and \
                            not sub.name.startswith("_"):
                        yield sub


def test_every_module_has_a_docstring():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None:
            missing.append(str(path.relative_to(SRC)))
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_item_has_a_docstring():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in _public_defs(tree):
            if ast.get_docstring(node) is None:
                missing.append(
                    f"{path.relative_to(SRC)}:{node.lineno}:{node.name}")
    assert not missing, f"public items without docstrings: {missing}"
