"""Tests for union-find (repro.seq.union_find)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import UnionFind


class TestBasics:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_components == 4

    def test_union_idempotent(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 4

    def test_transitivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 4)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_size(self):
        uf = UnionFind(0)
        assert len(uf) == 0


class TestBulk:
    def test_find_many_matches_find(self):
        rng = np.random.default_rng(0)
        uf = UnionFind(100)
        for _ in range(80):
            uf.union(int(rng.integers(0, 100)), int(rng.integers(0, 100)))
        xs = rng.integers(0, 100, 500)
        singles = np.array([uf.find(int(x)) for x in xs])
        assert np.array_equal(uf.find_many(xs), singles)

    def test_union_edges_matches_sequential(self):
        rng = np.random.default_rng(1)
        us = rng.integers(0, 30, 60)
        vs = rng.integers(0, 30, 60)
        uf1, uf2 = UnionFind(30), UnionFind(30)
        mask = uf1.union_edges(us, vs)
        expect = np.array([uf2.union(int(a), int(b))
                           for a, b in zip(us, vs)])
        assert np.array_equal(mask, expect)

    def test_components_partition(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        comp = uf.components()
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert comp[4] != comp[5]


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                    max_size=60))
    def test_matches_naive_partition(self, pairs):
        """Union-find agrees with a naive label-propagation partition."""
        n = 20
        uf = UnionFind(n)
        naive = list(range(n))

        def naive_merge(a, b):
            la, lb = naive[a], naive[b]
            if la == lb:
                return
            for i in range(n):
                if naive[i] == lb:
                    naive[i] = la

        for a, b in pairs:
            uf.union(a, b)
            naive_merge(a, b)
        for i in range(n):
            for j in range(n):
                assert uf.connected(i, j) == (naive[i] == naive[j])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)),
                    max_size=100))
    def test_component_count_invariant(self, pairs):
        uf = UnionFind(50)
        merges = sum(1 for a, b in pairs if uf.union(a, b))
        assert uf.n_components == 50 - merges
        assert len(np.unique(uf.components())) == uf.n_components
