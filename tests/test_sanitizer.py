"""Adversarial tests for the runtime sanitizer (repro.simmpi.sanitizer).

Every test seeds a deliberate violation of one of DESIGN.md's invariants --
cross-PE array writes, skipped collective charges, non-monotone clocks,
unsorted redistribute output -- and asserts simsan reports it with the
right PE / operation.  Machines are created with ``sanitize=True``
explicitly so the suite stays meaningful under ``--simsan=off``.
"""

import numpy as np
import pytest

from repro.core import (
    BoruvkaConfig,
    FilterConfig,
    MSTRun,
    contract_components,
    distributed_boruvka,
    distributed_filter_boruvka,
    exchange_labels,
    min_edges,
    relabel,
)
from repro.core.labels import GhostTable
from repro.core.redistribute import redistribute
from repro.dgraph import DistGraph, Edges
from repro.simmpi import (
    Comm,
    CostAccountingViolation,
    DistributionViolation,
    Machine,
    PEArray,
    SortednessViolation,
)

from helpers import random_simple_graph


@pytest.fixture
def rng():
    return np.random.default_rng(149)


def make_graph(rng, p=5, n=50, m=250):
    machine = Machine(p, sanitize=True)
    g = random_simple_graph(rng, n, m)
    return machine, DistGraph.from_global_edges(machine, g)


class TestOwnership:
    def test_cross_pe_write_reports_pair(self, rng):
        machine, dg = make_graph(rng)
        with machine.on_pe(0):
            with pytest.raises(DistributionViolation) as exc:
                dg.parts[1].u[0] = 99
        assert exc.value.writer_pe == 0
        assert exc.value.owner_pe == 1
        assert "setitem" in str(exc.value)

    def test_driver_write_outside_any_context(self, rng):
        machine, dg = make_graph(rng)
        with pytest.raises(DistributionViolation) as exc:
            dg.parts[2].w[0] = 7
        assert exc.value.writer_pe is None
        assert exc.value.owner_pe == 2

    def test_inplace_ufunc_checked(self, rng):
        machine, dg = make_graph(rng)
        with machine.on_pe(0):
            with pytest.raises(DistributionViolation) as exc:
                np.add(dg.parts[1].w, 1, out=dg.parts[1].w)
        assert (exc.value.writer_pe, exc.value.owner_pe) == (0, 1)
        assert "ufunc:add" in exc.value.op

    def test_raw_escape_blocked_by_readonly_flag(self, rng):
        """Unwrapping the PEArray still hits the writeable=False backstop."""
        machine, dg = make_graph(rng)
        with pytest.raises(ValueError, match="read-only"):
            dg.parts[1].u.view(np.ndarray)[0] = 5

    def test_owner_may_write_in_context(self, rng):
        machine, dg = make_graph(rng)
        part = dg.parts[1]
        if not len(part):
            pytest.skip("empty part")
        old = int(part.u[0])
        with machine.on_pe(1):
            part.u[0] = old + 1
            part.u[0] = old
        assert int(part.u[0]) == old
        # ... and the block is locked again afterwards.
        with pytest.raises(DistributionViolation):
            part.u[0] = old

    def test_derived_copies_are_unrestricted(self, rng):
        """Fancy-index copies of PE state are private scratch memory."""
        machine, dg = make_graph(rng)
        part = dg.parts[0]
        scratch = part.u[np.arange(len(part))]
        scratch[0] = 123  # no context needed: copies carry no owner
        assert not isinstance(np.asarray(scratch).base, PEArray) or True
        view = part.u[1:]
        assert isinstance(view, PEArray)
        with pytest.raises(DistributionViolation):
            view[0] = 1  # views keep the owner

    def test_reads_are_always_allowed(self, rng):
        machine, dg = make_graph(rng)
        total = sum(int(p.w.sum()) for p in dg.parts)
        assert total > 0


class TestCostAccounting:
    def test_negative_charge_rejected(self):
        m = Machine(4, sanitize=True)
        with pytest.raises(CostAccountingViolation, match="negative"):
            m.charge(-1.0)

    def test_negative_vector_charge_rejected(self):
        m = Machine(4, sanitize=True)
        with pytest.raises(CostAccountingViolation):
            m.charge(np.array([1e-6, -1e-9, 1e-6, 1e-6]))

    def test_collective_must_charge_all_participants(self):
        m = Machine(5, sanitize=True)
        comm = Comm(m)
        cost = np.full(5, 1e-6)
        cost[2] = 0.0
        with pytest.raises(CostAccountingViolation) as exc:
            comm._sync_and_charge(cost)
        assert "2" in str(exc.value)

    def test_collective_cost_vector_length_checked(self):
        m = Machine(5, sanitize=True)
        with pytest.raises(CostAccountingViolation, match="participants"):
            Comm(m)._sync_and_charge(np.full(3, 1e-6))

    def test_clock_rollback_detected_at_checkpoint(self):
        m = Machine(3, sanitize=True)
        Comm(m).barrier()  # advances the sanitizer's clock floor
        m.clock[1] -= 1.0  # direct tampering bypasses charge()
        with pytest.raises(CostAccountingViolation, match="backwards"):
            m.checkpoint("tampered")

    def test_clock_rollback_detected_at_next_collective(self):
        m = Machine(3, sanitize=True)
        comm = Comm(m)
        comm.barrier()
        m.clock[0] -= 0.5
        with pytest.raises(CostAccountingViolation, match="backwards"):
            comm.barrier()

    def test_unaccounted_bytes_detected(self):
        m = Machine(4, sanitize=True)
        m.bytes_communicated += 1e6  # moved data without tracing it
        with pytest.raises(CostAccountingViolation, match="inconsistent"):
            Comm(m).barrier()

    def test_two_level_volume_bound(self):
        m = Machine(16, sanitize=True)
        san = m.sanitizer
        san.check_two_level(16, 100, [100, 100], [4, 4])  # exactly 2x: fine
        with pytest.raises(CostAccountingViolation, match="2x"):
            san.check_two_level(16, 100, [150, 151], [4, 4])

    def test_two_level_group_bound(self):
        m = Machine(16, sanitize=True)
        with pytest.raises(CostAccountingViolation, match="sqrt"):
            m.sanitizer.check_two_level(16, 10, [10, 10], [4, 7])

    def test_multilevel_bounds(self):
        m = Machine(27, sanitize=True)
        san = m.sanitizer
        san.check_multilevel(27, 3, 50, [50, 50, 50], [3, 3, 3])
        with pytest.raises(CostAccountingViolation, match="3x"):
            san.check_multilevel(27, 3, 50, [51, 50, 50], [3, 3, 3])
        with pytest.raises(CostAccountingViolation):
            san.check_multilevel(27, 3, 50, [50, 50, 50], [9, 3, 3])

    def test_grid_alltoall_passes_its_own_bounds(self, rng):
        """A real grid exchange satisfies the 2x / O(sqrt p) assertions."""
        from repro.simmpi import alltoallv_grid

        m = Machine(10, sanitize=True)
        comm = Comm(m)
        bufs = [rng.integers(0, 100, (10, 2)) for _ in range(10)]
        counts = [np.full(10, 1, dtype=np.int64) for _ in range(10)]
        alltoallv_grid(comm, bufs, counts)
        assert m.sanitizer.counters["alltoall_bounds"] == 1


class TestSortedness:
    def test_unsorted_redistribute_output_detected(self, rng, monkeypatch):
        """A broken distributed sorter must be caught at the rebuild."""
        import sys

        mod = sys.modules["repro.core.redistribute"]
        real = mod.sort_rows

        def broken(comm, mats, **kwargs):
            return list(reversed(real(comm, mats, **kwargs)))

        monkeypatch.setattr(mod, "sort_rows", broken)
        machine, dg = make_graph(rng)
        run = MSTRun(machine, BoruvkaConfig())
        with pytest.raises(SortednessViolation):
            redistribute(run, machine, dg.parts)

    def test_locally_unsorted_part_detected(self, rng):
        machine = Machine(2, sanitize=True)
        good = Edges(np.array([0, 1]), np.array([1, 0]),
                     np.array([5, 5]), np.array([0, 1]))
        bad = Edges(np.array([3, 2]), np.array([2, 3]),
                    np.array([4, 4]), np.array([2, 3]))
        dg = DistGraph(machine, [good, bad], check=False)
        with pytest.raises(SortednessViolation, match="PE 1"):
            machine.sanitizer.check_redistributed(dg)

    def test_min_lex_disagreement_detected(self, rng):
        machine, dg = make_graph(rng)
        dg.min_keys[0][2] += 1  # corrupt the replicated metadata
        with pytest.raises(SortednessViolation, match="min-lex"):
            machine.sanitizer.check_redistributed(dg)

    def test_part_size_disagreement_detected(self, rng):
        machine, dg = make_graph(rng)
        dg.part_sizes[1] += 3
        with pytest.raises(SortednessViolation, match="size"):
            machine.sanitizer.check_redistributed(dg)

    def test_clean_graph_passes(self, rng):
        machine, dg = make_graph(rng)
        machine.sanitizer.check_redistributed(dg)


class TestAlgorithmLevelDetection:
    """Failure injection through the algorithm stack (formerly the ad-hoc
    spot checks in test_invariants.py): PE-local corruption is applied
    inside the owning PE's context, and the *algorithms* must detect it."""

    def test_corrupt_ghost_table_detected(self, rng):
        """A ghost vertex whose label never arrived must raise, not corrupt."""
        g = random_simple_graph(rng, 50, 250)
        machine = Machine(5, sanitize=True)
        dg = DistGraph.from_global_edges(machine, g)
        run = MSTRun(machine, BoruvkaConfig())
        chosen = min_edges(dg)
        labels = contract_components(dg, chosen, run)
        vids = [c.vids for c in chosen]
        tables = exchange_labels(dg, vids, labels, run)
        victim = next(i for i, t in enumerate(tables) if len(t.ghosts))
        broken = GhostTable(tables[victim].ghosts[1:],
                            tables[victim].labels[1:])
        dropped = int(tables[victim].ghosts[0])
        if dropped not in dg.parts[victim].v:
            pytest.skip("dropped ghost not referenced by this part")
        tables[victim] = broken
        with pytest.raises(RuntimeError, match="ghost labels missing"):
            relabel(dg, vids, labels, tables, run)

    def test_query_for_unknown_vertex_detected(self, rng):
        """Pointer doubling queries for non-resident vertices must raise."""
        g = random_simple_graph(rng, 50, 250)
        machine = Machine(5, sanitize=True)
        dg = DistGraph.from_global_edges(machine, g)
        run = MSTRun(machine, BoruvkaConfig())
        chosen = min_edges(dg)
        victim = next(i for i, c in enumerate(chosen)
                      if len(c) and not c.shared.all())
        k = int(np.flatnonzero(~chosen[victim].shared)[0])
        # PE-local corruption: legitimate inside the owner's context ...
        with machine.on_pe(victim):
            chosen[victim].to[k] = 10 ** 9
        # ... and the algorithm itself must still catch the bogus query.
        with pytest.raises(RuntimeError):
            contract_components(dg, chosen, run)


class TestCleanRunsAndKnobs:
    def test_full_runs_clean_under_sanitizer(self, rng):
        g = random_simple_graph(rng, 80, 400)
        for algo, cfg in ((distributed_boruvka, BoruvkaConfig(base_case_min=16)),
                          (distributed_filter_boruvka, FilterConfig())):
            machine = Machine(6, sanitize=True)
            dg = DistGraph.from_global_edges(machine, g)
            algo(dg, cfg)
            counters = machine.sanitizer.counters
            assert counters["collectives"] > 0
            assert counters["charges"] > 0

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMSAN", "0")
        assert Machine(2).sanitizer is None
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        assert Machine(2).sanitizer is not None
        # Explicit argument beats the environment in both directions.
        assert Machine(2, sanitize=False).sanitizer is None
        monkeypatch.setenv("REPRO_SIMSAN", "0")
        assert Machine(2, sanitize=True).sanitizer is not None

    def test_off_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMSAN", raising=False)
        assert Machine(2).sanitizer is None
        assert not Machine(2).sanitizing

    def test_reset_clears_sanitizer_state(self, rng):
        machine, dg = make_graph(rng)
        distributed_boruvka(dg, BoruvkaConfig(base_case_min=16))
        assert machine.sanitizer._traced_bytes > 0
        machine.reset()
        assert machine.sanitizer._traced_bytes == 0
        assert machine.sanitizer.comm_matrix.sum() == 0
        Comm(machine).barrier()  # bytes/trace consistency holds post-reset

    def test_on_pe_is_noop_without_sanitizer(self):
        m = Machine(2, sanitize=False)
        with m.on_pe(1):
            pass
        m.checkpoint("noop")
