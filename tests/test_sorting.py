"""Tests for the distributed sorters (repro.sorting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import Comm, Machine
from repro.sorting import (
    HYPERCUBE_THRESHOLD,
    is_globally_sorted,
    is_locally_sorted,
    local_lexsort,
    rebalance_blocks,
    sort_hypercube,
    sort_rows,
    sort_samplesort,
)
from repro.sorting.common import as_row_matrix


def _multiset(parts):
    rows = [x for x in parts if len(x)]
    if not rows:
        return []
    cat = np.concatenate(rows)
    return sorted(map(tuple, cat.tolist()))


class TestHelpers:
    def test_as_row_matrix_1d(self):
        out = as_row_matrix(np.array([3, 1, 2]))
        assert out.shape == (3, 1)

    def test_as_row_matrix_empty_2d(self):
        out = as_row_matrix(np.empty((0, 4), dtype=np.int64))
        assert out.shape == (0, 4)

    def test_as_row_matrix_rejects_3d(self):
        with pytest.raises(ValueError):
            as_row_matrix(np.zeros((2, 2, 2)))

    def test_local_lexsort(self):
        rows = np.array([[2, 1, 9], [1, 5, 0], [2, 0, 3], [1, 5, 0]])
        out = local_lexsort(rows, 2)
        assert is_locally_sorted(out, 2)
        assert _multiset([out]) == _multiset([rows])

    def test_is_globally_sorted_detects_boundary_violation(self):
        a = np.array([[5, 0, 0]])
        b = np.array([[4, 0, 0]])
        assert not is_globally_sorted([a, b], 3)
        assert is_globally_sorted([b, a], 3)

    def test_is_locally_sorted_secondary_key(self):
        rows = np.array([[1, 2], [1, 1]])
        assert not is_locally_sorted(rows, 2)
        assert is_locally_sorted(rows, 1)


@pytest.mark.parametrize("method", ["hypercube", "samplesort", "auto"])
class TestSorters:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    @pytest.mark.parametrize("scale", [0, 3, 60, 900])
    def test_sorts_and_preserves_multiset(self, method, p, scale):
        rng = np.random.default_rng(p * 1000 + scale)
        parts = [rng.integers(0, 50, (int(rng.integers(0, scale + 1)), 4))
                 for _ in range(p)]
        out = sort_rows(Comm(Machine(p)), [x.copy() for x in parts],
                        n_key_cols=3, method=method)
        assert is_globally_sorted(out, 3)
        assert _multiset(out) == _multiset(parts)

    def test_rebalanced_output(self, method):
        rng = np.random.default_rng(0)
        p = 7
        parts = [rng.integers(0, 50, (int(rng.integers(0, 80)), 4))
                 for _ in range(p)]
        out = sort_rows(Comm(Machine(p)), parts, 3, method=method)
        sizes = [len(x) for x in out]
        assert max(sizes) - min(sizes) <= 1

    def test_all_equal_keys(self, method):
        p = 8
        parts = [np.full((20, 4), 7, dtype=np.int64) for _ in range(p)]
        out = sort_rows(Comm(Machine(p)), parts, 3, method=method)
        assert sum(len(x) for x in out) == 160
        assert is_globally_sorted(out, 3)

    def test_payload_columns_travel_with_keys(self, method):
        # Column 1 = key, column 2 = 2*key: the relation must survive.
        rng = np.random.default_rng(1)
        p = 4
        parts = []
        for _ in range(p):
            k = rng.integers(0, 1000, 30)
            parts.append(np.stack([k, 2 * k], axis=1))
        out = sort_rows(Comm(Machine(p)), parts, 1, method=method)
        for x in out:
            assert np.array_equal(x[:, 1], 2 * x[:, 0])


class TestDispatch:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            sort_rows(Comm(Machine(2)),
                      [np.zeros((1, 2), dtype=np.int64)] * 2, 1,
                      method="bogosort")

    def test_auto_threshold(self):
        assert HYPERCUBE_THRESHOLD == 512  # the paper's constant

    def test_duplicate_heavy_input(self):
        rng = np.random.default_rng(5)
        p = 6
        parts = [rng.integers(0, 3, (100, 2)) for _ in range(p)]
        out = sort_rows(Comm(Machine(p)), parts, 2)
        assert is_globally_sorted(out, 2)
        assert _multiset(out) == _multiset(parts)


class TestRebalance:
    def test_preserves_order_and_balances(self):
        p = 5
        comm = Comm(Machine(p))
        # Globally sorted but badly balanced parts.
        parts = [np.arange(0, 40).reshape(-1, 1),
                 np.empty((0, 1), dtype=np.int64),
                 np.arange(40, 45).reshape(-1, 1),
                 np.empty((0, 1), dtype=np.int64),
                 np.arange(45, 47).reshape(-1, 1)]
        out = rebalance_blocks(comm, parts)
        assert is_globally_sorted(out, 1)
        sizes = [len(x) for x in out]
        assert max(sizes) - min(sizes) <= 1
        assert np.array_equal(np.concatenate(out)[:, 0], np.arange(47))

    def test_empty_input(self):
        p = 3
        out = rebalance_blocks(Comm(Machine(p)),
                               [np.empty((0, 2), dtype=np.int64)] * p)
        assert all(len(x) == 0 for x in out)


class TestCostShape:
    def test_hypercube_cheaper_for_tiny_inputs(self):
        p = 32
        rng = np.random.default_rng(2)
        parts = [rng.integers(0, 100, (8, 3)) for _ in range(p)]
        mh, ms = Machine(p), Machine(p)
        sort_hypercube(Comm(mh), [x.copy() for x in parts], 3)
        sort_samplesort(Comm(ms), [x.copy() for x in parts], 3)
        assert mh.elapsed() < ms.elapsed()

    def test_samplesort_cheaper_for_large_inputs(self):
        p = 32
        rng = np.random.default_rng(3)
        parts = [rng.integers(0, 10 ** 6, (8192, 3)) for _ in range(p)]
        mh, ms = Machine(p), Machine(p)
        sort_hypercube(Comm(mh), [x.copy() for x in parts], 3)
        sort_samplesort(Comm(ms), [x.copy() for x in parts], 3)
        assert ms.elapsed() < mh.elapsed()


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 40), st.integers(0, 10 ** 6))
    def test_sorted_and_multiset_preserved(self, p, max_rows, seed):
        rng = np.random.default_rng(seed)
        parts = [rng.integers(0, 20, (int(rng.integers(0, max_rows + 1)), 3))
                 for _ in range(p)]
        out = sort_rows(Comm(Machine(p)), [x.copy() for x in parts], 2)
        assert is_globally_sorted(out, 2)
        assert _multiset(out) == _multiset(parts)
