"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphgen import load_npz


@pytest.fixture
def instance(tmp_path):
    path = tmp_path / "g.npz"
    assert main(["gen", "--family", "GNM", "-n", "256", "-m", "1024",
                 "-o", str(path)]) == 0
    return path


class TestGen:
    def test_family(self, tmp_path):
        out = tmp_path / "grid.npz"
        assert main(["gen", "--family", "2D-GRID", "-n", "256",
                     "-o", str(out)]) == 0
        g = load_npz(out)
        assert g.name == "2D-GRID"

    def test_instance(self, tmp_path):
        out = tmp_path / "road.npz"
        assert main(["gen", "--instance", "US-road", "-n", "1024",
                     "-o", str(out)]) == 0
        g = load_npz(out)
        assert g.name == "US-road"

    def test_family_and_instance_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["gen", "--family", "GNM", "--instance", "US-road",
                  "-o", str(tmp_path / "x.npz")])


class TestMst:
    def test_runs_and_verifies(self, instance, capsys):
        assert main(["mst", str(instance), "--procs", "4",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "MSF weight" in out
        assert "verification    : OK" in out

    @pytest.mark.parametrize("alg", ["filter-boruvka", "mnd-mst",
                                     "awerbuch-shiloach"])
    def test_algorithms(self, instance, alg, capsys):
        assert main(["mst", str(instance), "--algorithm", alg,
                     "--procs", "4", "--verify"]) == 0

    def test_saves_msf(self, instance, tmp_path, capsys):
        out = tmp_path / "msf.npz"
        assert main(["mst", str(instance), "--procs", "4",
                     "--output", str(out)]) == 0
        msf = load_npz(out)
        assert msf.name.endswith("-msf")
        assert len(msf.edges) == 255  # spanning tree of 256 connected verts

    def test_alltoall_choice(self, instance, capsys):
        assert main(["mst", str(instance), "--procs", "8",
                     "--alltoall", "grid3", "--verify"]) == 0

    def test_no_preprocessing(self, instance, capsys):
        assert main(["mst", str(instance), "--procs", "4",
                     "--no-preprocessing", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "local_preprocessing" not in out


class TestOthers:
    def test_cc(self, instance, capsys):
        assert main(["cc", str(instance), "--procs", "4"]) == 0
        assert "connected components" in capsys.readouterr().out

    def test_info(self, instance, capsys):
        assert main(["info", str(instance)]) == 0
        out = capsys.readouterr().out
        assert "vertices    : 256" in out

    def test_sweep_weak(self, capsys):
        assert main(["sweep", "--family", "GNM", "--cores", "2,4",
                     "--per-core-vertices", "64",
                     "--per-core-edges", "256"]) == 0
        out = capsys.readouterr().out
        assert "cores" in out and "boruvka" in out

    def test_sweep_strong(self, capsys):
        assert main(["sweep", "--family", "GNM", "--cores", "2,4",
                     "--strong", "--per-core-vertices", "64",
                     "--per-core-edges", "256"]) == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFaults:
    def test_recovers_and_reports(self, capsys):
        assert main(["faults", "--procs", "4", "-n", "512", "-m", "2048",
                     "--schedule",
                     "seed=3, pe_fail@0:1, msg_drop=0.02, corrupt=0.05",
                     "--base-case-min", "16"]) == 0
        out = capsys.readouterr().out
        assert "OK, matches fault-free run" in out
        assert "pe_fail" in out and "round_replay" in out

    def test_saved_instance_and_filter_boruvka(self, instance, capsys):
        assert main(["faults", str(instance), "--algo", "filter-boruvka",
                     "--procs", "4", "--schedule", "seed=1, corrupt=0.1",
                     "--base-case-min", "16"]) == 0
        assert "OK, matches fault-free run" in capsys.readouterr().out

    def test_rejects_malformed_schedule(self):
        with pytest.raises(ValueError, match="fault spec"):
            main(["faults", "--procs", "4", "-n", "128", "-m", "512",
                  "--schedule", "nonsense"])


class TestServe:
    """NDJSON round-trip through ``repro serve`` on stdio."""

    def _serve(self, instance, monkeypatch, capsys, reqs, extra=()):
        import io
        import json
        lines = "".join(json.dumps(r) + "\n" for r in reqs)
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", str(instance), "--procs", "2",
                     "--epoch-batch", "100000",
                     "--epoch-delay-ms", "600000.0", *extra]) == 0
        captured = capsys.readouterr()
        out = [json.loads(t) for t in captured.out.splitlines() if t]
        return out, captured.err

    def test_roundtrip(self, instance, monkeypatch, capsys):
        out, err = self._serve(instance, monkeypatch, capsys, [
            {"id": 1, "op": "stats"},
            {"id": 2, "op": "msf_weight"},
            {"id": 3, "op": "edge_in_msf", "u": 0, "v": 1},
            {"id": 4, "op": "shutdown"},
        ])
        by_id = {r["id"]: r for r in out}
        assert by_id[1]["result"]["n_vertices"] == 256
        assert by_id[2]["ok"] and by_id[2]["result"]["weight"] > 0
        assert by_id[3]["ok"] and by_id[4]["ok"]
        assert "serving" in err and "served 4 requests" in err
        # stats must agree with the mst command's idea of the graph
        assert by_id[1]["result"]["n_edges"] == 1024

    def test_mutation_and_ledger(self, instance, tmp_path, monkeypatch,
                                 capsys):
        import json
        ledger = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        g = load_npz(instance)
        half = g.edges.u < g.edges.v
        u = int(g.edges.u[half][0])
        v = int(g.edges.v[half][0])
        out, err = self._serve(instance, monkeypatch, capsys, [
            {"id": 1, "op": "delete_edges", "edges": [[u, v]]},
            {"id": 2, "op": "flush"},
            {"id": 3, "op": "shutdown"},
        ])
        by_id = {r["id"]: r for r in out}
        assert by_id[1]["ok"] and by_id[1]["result"]["applied"]
        assert by_id[2]["result"]["committed"] is True
        rows = [json.loads(t) for t in
                ledger.read_text().splitlines() if t]
        serve_rows = [r for r in rows if r["kind"] == "serve"]
        assert len(serve_rows) == 1
        assert serve_rows[0]["serving"]["requests"] == 3

    def test_bad_request_line(self, instance, monkeypatch, capsys):
        out, _ = self._serve(instance, monkeypatch, capsys, [
            {"id": 1, "op": "frobnicate"},
            {"id": 2, "op": "shutdown"},
        ])
        by_id = {r["id"]: r for r in out}
        assert not by_id[1]["ok"]
        assert by_id[1]["error"]["code"] == "bad_request"
