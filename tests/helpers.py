"""Shared graph builders for the test suite."""

from __future__ import annotations

import numpy as np

from repro.dgraph.edges import Edges


def random_simple_graph(rng: np.random.Generator, n: int, target_m: int,
                        weight_high: int = 255) -> Edges:
    """A random simple undirected graph as a symmetric sorted edge sequence.

    Pairs are deduplicated; weights are uniform integers in
    ``[1, weight_high)``; directed-edge ids are final sorted positions
    (the generator/`from_global_edges` contract).
    """
    u = rng.integers(0, n, target_m)
    v = rng.integers(0, n, target_m)
    keep = u != v
    u, v = u[keep], v[keep]
    cu = np.minimum(u, v)
    cv = np.maximum(u, v)
    code = np.unique(cu * n + cv)
    cu, cv = code // n, code % n
    w = rng.integers(1, weight_high, len(cu))
    sym = Edges(
        np.concatenate([cu, cv]),
        np.concatenate([cv, cu]),
        np.concatenate([w, w]),
    ).sort_lex()
    sym.id[:] = np.arange(len(sym))
    return sym


def random_distinct_weight_graph(rng: np.random.Generator, n: int,
                                 target_m: int) -> Edges:
    """Like :func:`random_simple_graph` but with all-distinct weights."""
    g = random_simple_graph(rng, n, target_m, weight_high=2)
    # Overwrite with a permutation assigned per undirected pair.
    cu = np.minimum(g.u, g.v)
    cv = np.maximum(g.u, g.v)
    code = cu * n + cv
    uniq, inverse = np.unique(code, return_inverse=True)
    perm = rng.permutation(len(uniq)).astype(np.int64) + 1
    g.w[:] = perm[inverse]
    return g
