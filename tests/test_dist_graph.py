"""Tests for the distributed graph structure (repro.dgraph.dist_graph)."""

import bisect

import numpy as np
import pytest

from repro.dgraph import DistGraph, Edges, lex_searchsorted
from repro.simmpi import Machine

from helpers import random_simple_graph


class TestLexSearchsorted:
    @pytest.mark.parametrize("side", ["left", "right"])
    def test_matches_bisect(self, side, rng):
        keys = sorted(
            (int(a), int(b), int(c))
            for a, b, c in zip(rng.integers(0, 20, 25),
                               rng.integers(0, 5, 25),
                               rng.integers(0, 5, 25))
        )
        ku = np.array([k[0] for k in keys])
        kv = np.array([k[1] for k in keys])
        kw = np.array([k[2] for k in keys])
        qu = rng.integers(0, 22, 300)
        qv = rng.integers(0, 6, 300)
        qw = rng.integers(0, 6, 300)
        fn = bisect.bisect_right if side == "right" else bisect.bisect_left
        expect = np.array([fn(keys, (a, b, c))
                           for a, b, c in zip(qu, qv, qw)])
        got = lex_searchsorted((ku, kv, kw), (qu, qv, qw), side)
        assert np.array_equal(got, expect)

    def test_empty_keys(self):
        out = lex_searchsorted((np.empty(0, dtype=np.int64),),
                               (np.array([1, 2]),))
        assert list(out) == [0, 0]

    def test_empty_queries(self):
        out = lex_searchsorted((np.array([1]),), (np.empty(0, dtype=np.int64),))
        assert len(out) == 0


class TestConstruction:
    def test_partition_covers_everything(self, rng):
        g = random_simple_graph(rng, 50, 300)
        dg = DistGraph.from_global_edges(Machine(7), g)
        assert dg.global_edge_count() == len(g)
        expected_n = len(np.unique(np.concatenate([g.u, g.v])))
        assert dg.global_vertex_count() == expected_n

    def test_avoid_shared(self, rng):
        g = random_simple_graph(rng, 50, 300)
        dg = DistGraph.from_global_edges(Machine(7), g, avoid_shared=True)
        assert not dg.shared_first.any()
        assert len(dg.shared_vertex_set()) == 0

    def test_ids_are_positions(self, rng):
        g = random_simple_graph(rng, 30, 100)
        dg = DistGraph.from_global_edges(Machine(4), g)
        all_ids = np.concatenate([p.id for p in dg.parts])
        assert np.array_equal(all_ids, np.arange(len(g)))

    def test_more_pes_than_edges(self, rng):
        g = random_simple_graph(rng, 5, 4)
        dg = DistGraph.from_global_edges(Machine(32), g)
        assert dg.global_edge_count() == len(g)
        assert (~dg.has_edges).sum() > 0  # some PEs empty

    def test_wrong_part_count_rejected(self):
        with pytest.raises(ValueError):
            DistGraph(Machine(3), [Edges.empty()])

    def test_unsorted_part_rejected(self):
        bad = Edges(np.array([2, 1]), np.array([0, 0]), np.array([1, 1]))
        ok = Edges.empty()
        with pytest.raises(ValueError):
            DistGraph(Machine(2), [bad, ok])

    def test_global_order_violation_rejected(self):
        a = Edges(np.array([5]), np.array([0]), np.array([1]))
        b = Edges(np.array([1]), np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            DistGraph(Machine(2), [a, b])


class TestLocalisation:
    def test_home_of_resident_edges(self, rng):
        g = random_simple_graph(rng, 60, 400)
        dg = DistGraph.from_global_edges(Machine(9), g)
        for i, part in enumerate(dg.parts):
            if len(part) == 0:
                continue
            homes = dg.home_of_edges(part.u, part.v, part.w)
            assert (homes == i).all()

    def test_home_of_vertices_owns_vertex(self, rng):
        g = random_simple_graph(rng, 60, 400)
        dg = DistGraph.from_global_edges(Machine(9), g)
        vertices = np.unique(g.u)
        homes = dg.home_of_vertices(vertices)
        for v, h in zip(vertices, homes):
            assert v in dg.parts[h].u

    def test_shared_vertices_detected(self, rng):
        # Star graph: the hub's edges must straddle boundaries.
        n = 40
        hub = np.zeros(n - 1, dtype=np.int64)
        leaves = np.arange(1, n, dtype=np.int64)
        w = rng.integers(1, 255, n - 1)
        g = Edges(np.concatenate([hub, leaves]),
                  np.concatenate([leaves, hub]),
                  np.concatenate([w, w])).sort_lex()
        g.id[:] = np.arange(len(g))
        dg = DistGraph.from_global_edges(Machine(4), g)
        assert 0 in dg.shared_vertex_set()


class TestVertexGroups:
    def test_groups_cover_part(self, rng):
        g = random_simple_graph(rng, 40, 250)
        dg = DistGraph.from_global_edges(Machine(5), g)
        for i in range(5):
            vids, starts = dg.vertex_groups(i)
            part = dg.parts[i]
            assert starts[-1] == len(part)
            for k, v in enumerate(vids):
                seg = part.u[starts[k]:starts[k + 1]]
                assert (seg == v).all()

    def test_empty_part(self):
        dg = DistGraph(Machine(2), [Edges.empty(), Edges.empty()])
        vids, starts = dg.vertex_groups(0)
        assert len(vids) == 0 and list(starts) == [0]

    def test_local_vertex_counts(self, rng):
        g = random_simple_graph(rng, 40, 250)
        dg = DistGraph.from_global_edges(Machine(5), g)
        counts = dg.local_vertex_counts()
        assert counts.sum() - dg.shared_first.sum() == dg.global_vertex_count()


@pytest.fixture
def rng():
    return np.random.default_rng(17)
