"""Tests for the graph generators (repro.graphgen)."""

import numpy as np
import pytest

from repro.graphgen import (
    FAMILIES,
    TABLE_I,
    gen_family,
    gen_gnm,
    gen_grid2d,
    gen_realworld,
    gen_rgg2d,
    gen_rgg3d,
    gen_rhg,
    gen_rmat,
    load_compressed,
    load_npz,
    radius_for_avg_degree,
    save_compressed,
    save_npz,
)
from repro.simmpi import Machine


def _check_contract(g):
    """The generator contract every family must honour (Section VII)."""
    e = g.edges
    assert e.is_sorted_lex()
    assert np.array_equal(e.id, np.arange(len(e)))
    assert (e.w >= 1).all() and (e.w < 255).all()
    assert (e.u >= 0).all() and (e.u < g.n_vertices).all()
    assert (e.v >= 0).all() and (e.v < g.n_vertices).all()
    assert (e.u != e.v).all()
    # Symmetric with identical weights per direction.
    fwd = set(zip(e.u.tolist(), e.v.tolist(), e.w.tolist()))
    assert all((v, u, w) in fwd for (u, v, w) in fwd)
    # No duplicate directed pairs.
    pairs = list(zip(e.u.tolist(), e.v.tolist()))
    assert len(pairs) == len(set(pairs))


class TestContract:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_family_contract(self, family):
        _check_contract(gen_family(family, 512, 2048, seed=3))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic(self, family):
        a = gen_family(family, 256, 1024, seed=5)
        b = gen_family(family, 256, 1024, seed=5)
        assert np.array_equal(a.edges.as_matrix(), b.edges.as_matrix())

    @pytest.mark.parametrize("family", FAMILIES)
    def test_seed_matters(self, family):
        if family == "2D-GRID":
            pytest.skip("grid topology is deterministic; only weights vary")
        a = gen_family(family, 256, 1024, seed=1)
        b = gen_family(family, 256, 1024, seed=2)
        assert not np.array_equal(a.edges.as_matrix(), b.edges.as_matrix())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            gen_family("HYPERGRID", 100, 200)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_distribute_no_shared(self, family):
        g = gen_family(family, 256, 1024, seed=3)
        dg = g.distribute(Machine(8))
        assert not dg.shared_first.any()


class TestGrid:
    def test_degrees_bounded_by_four(self):
        g = gen_grid2d(12, 17, seed=0)
        deg = np.bincount(g.edges.u)
        assert deg.max() <= 4

    def test_edge_count(self):
        r, c = 9, 13
        g = gen_grid2d(r, c)
        assert g.n_undirected_edges == r * (c - 1) + c * (r - 1)

    def test_periodic_torus_regular(self):
        g = gen_grid2d(8, 8, periodic=True)
        deg = np.bincount(g.edges.u, minlength=64)
        assert (deg == 4).all()

    def test_degenerate_sizes(self):
        assert gen_grid2d(1, 5).n_undirected_edges == 4
        with pytest.raises(ValueError):
            gen_grid2d(0, 5)

    def test_high_locality_under_partition(self):
        g = gen_grid2d(32, 32, seed=0)
        dg = g.distribute(Machine(4))
        local = 0
        for i in range(4):
            part = dg.parts[i]
            vids = np.unique(part.u)
            idx = np.searchsorted(vids, part.v)
            idx_c = np.minimum(idx, len(vids) - 1)
            local += int(((idx < len(vids))
                          & (vids[idx_c] == part.v)).sum())
        assert local / dg.global_edge_count() > 0.8


class TestGnm:
    def test_exact_edge_count(self):
        g = gen_gnm(100, 500, seed=2)
        assert g.n_undirected_edges == 500

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gen_gnm(4, 100)

    def test_tiny_n_rejected(self):
        with pytest.raises(ValueError):
            gen_gnm(1, 0)


class TestGeometric:
    def test_rgg_degree_calibration(self):
        g = gen_rgg2d(2000, avg_degree=12, seed=4)
        mean_deg = 2 * g.n_undirected_edges / g.n_vertices
        assert 7 < mean_deg < 17  # boundary effects allowed

    def test_rgg3d(self):
        g = gen_rgg3d(800, avg_degree=10, seed=4)
        assert g.name == "3D-RGG"
        _check_contract(g)

    def test_radius_formula(self):
        r2 = radius_for_avg_degree(1000, 10, 2)
        assert 1000 * np.pi * r2 ** 2 == pytest.approx(10)

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValueError):
            gen_rgg2d(100)
        with pytest.raises(ValueError):
            gen_rgg2d(100, avg_degree=5, radius=0.1)

    def test_rgg_locality_from_spatial_numbering(self):
        g = gen_rgg2d(2048, avg_degree=12, seed=4)
        # Neighbours should have nearby labels: median id distance small.
        # Columns may be stored unsigned; difference needs a signed dtype.
        dist = np.abs(g.edges.u.astype(np.int64) - g.edges.v.astype(np.int64))
        assert np.median(dist) < g.n_vertices / 8


class TestRhg:
    def test_power_law_tail(self):
        g = gen_rhg(4000, avg_degree=12, gamma=3.0, seed=5)
        deg = np.bincount(g.edges.u)
        deg = deg[deg > 0]
        # Heavy tail: the max degree far exceeds the mean.
        assert deg.max() > 6 * deg.mean()

    def test_average_degree_roughly_calibrated(self):
        g = gen_rhg(4000, avg_degree=12, seed=5)
        mean_deg = 2 * g.n_undirected_edges / g.n_vertices
        assert 4 < mean_deg < 36

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            gen_rhg(100, 8, gamma=1.5)


class TestRmat:
    def test_skewed_degrees(self):
        g = gen_rmat(12, 16384, seed=6)
        deg = np.bincount(g.edges.u)
        deg = deg[deg > 0]
        assert deg.max() > 10 * deg.mean()

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            gen_rmat(8, 100, probs=(0.5, 0.5, 0.5, 0.5))

    def test_log_n_bounds(self):
        with pytest.raises(ValueError):
            gen_rmat(0, 10)

    def test_scramble_destroys_locality(self):
        a = gen_rmat(10, 4096, seed=7, scramble=False)
        b = gen_rmat(10, 4096, seed=7, scramble=True)
        da = np.median(np.abs(a.edges.u.astype(np.int64)
                              - a.edges.v.astype(np.int64)))
        db = np.median(np.abs(b.edges.u.astype(np.int64)
                              - b.edges.v.astype(np.int64)))
        assert db > da


class TestRealWorld:
    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_standins(self, name):
        g = gen_realworld(name, n=1024, seed=8)
        _check_contract(g)
        assert g.params["instance"] == name
        assert g.params["scale_factor"] > 1

    def test_unknown_instance_rejected(self):
        with pytest.raises(ValueError):
            gen_realworld("orkut")

    def test_mn_ratio_classes(self):
        road = gen_realworld("US-road", n=4096, seed=8)
        web = gen_realworld("wdc-14", n=4096, seed=8)
        mn = lambda g: 2 * g.n_undirected_edges / g.n_vertices
        assert mn(road) < 5 < mn(web)


class TestIO:
    def test_npz_roundtrip(self, tmp_path):
        g = gen_family("GNM", 128, 512, seed=9)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        g2 = load_npz(path)
        assert g2.name == g.name
        assert g2.n_vertices == g.n_vertices
        assert np.array_equal(g2.edges.as_matrix(), g.edges.as_matrix())

    def test_compressed_roundtrip(self, tmp_path):
        g = gen_family("GNM", 128, 512, seed=9)
        path = tmp_path / "g.kmst.npz"
        save_compressed(g, path)
        g2 = load_compressed(path)
        assert np.array_equal(g2.edges.u, g.edges.u)
        assert np.array_equal(g2.edges.v, g.edges.v)
        assert np.array_equal(g2.edges.w, g.edges.w)
