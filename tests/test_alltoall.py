"""Tests for the sparse all-to-all variants (repro.simmpi.alltoall).

The central contract: direct, two-level grid and hypercube deliveries return
bit-identical results (receive buffers source-major with per-pair order
preserved), differing only in charged cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import (
    Comm,
    Machine,
    alltoallv_auto,
    alltoallv_direct,
    alltoallv_grid,
    alltoallv_hypercube,
    route_rows,
    unsort,
)
from repro.simmpi.alltoall import _grid_intermediate, _grid_shape

VARIANTS = [alltoallv_direct, alltoallv_grid, alltoallv_hypercube,
            alltoallv_auto]


def _random_send(rng, p, max_rows=12, cols=3):
    sendbufs, sendcounts = [], []
    for _ in range(p):
        k = int(rng.integers(0, max_rows))
        dest = np.sort(rng.integers(0, p, k))
        counts = np.zeros(p, dtype=np.int64)
        np.add.at(counts, dest, 1)
        sendbufs.append(rng.integers(0, 10 ** 6, (k, cols)))
        sendcounts.append(counts)
    return sendbufs, sendcounts


class TestEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 11, 16, 23, 32])
    def test_variants_agree(self, p, rng):
        sendbufs, sendcounts = _random_send(rng, p)
        ref, ref_counts = alltoallv_direct(
            Comm(Machine(p)), sendbufs, sendcounts)
        for fn in (alltoallv_grid, alltoallv_hypercube, alltoallv_auto):
            got, got_counts = fn(Comm(Machine(p)), sendbufs, sendcounts)
            for j in range(p):
                assert np.array_equal(ref[j], got[j]), (fn.__name__, j)
                assert np.array_equal(ref_counts[j], got_counts[j])

    def test_per_pair_order_preserved(self, rng):
        # All rows go 0 -> 1 carrying a sequence number.
        p = 4
        rows = np.arange(50).reshape(-1, 1)
        sendbufs = [rows] + [np.empty((0, 1), dtype=np.int64)] * 3
        counts0 = np.array([0, 50, 0, 0], dtype=np.int64)
        sendcounts = [counts0] + [np.zeros(p, dtype=np.int64)] * 3
        for fn in VARIANTS:
            recv, _ = fn(Comm(Machine(p)), sendbufs, sendcounts)
            assert np.array_equal(recv[1][:, 0], np.arange(50)), fn.__name__

    def test_source_major_order(self, rng):
        # Each PE i sends its rank to PE 0; PE 0 must receive 0,1,2,...
        p = 6
        sendbufs = [np.array([[i]]) for i in range(p)]
        counts = np.zeros(p, dtype=np.int64)
        counts[0] = 1
        sendcounts = [counts.copy() for _ in range(p)]
        for fn in VARIANTS:
            recv, rc = fn(Comm(Machine(p)), sendbufs, sendcounts)
            assert list(recv[0][:, 0]) == list(range(p)), fn.__name__
            assert list(rc[0]) == [1] * p


class TestValidation:
    def test_count_mismatch_rejected(self):
        p = 2
        bufs = [np.zeros((3, 1), dtype=np.int64)] * 2
        counts = [np.array([1, 1]), np.array([2, 1])]
        with pytest.raises(ValueError):
            alltoallv_direct(Comm(Machine(p)), bufs, counts)

    def test_wrong_count_length_rejected(self):
        p = 2
        bufs = [np.zeros((0, 1), dtype=np.int64)] * 2
        counts = [np.zeros(3, dtype=np.int64)] * 2
        with pytest.raises(ValueError):
            alltoallv_direct(Comm(Machine(p)), bufs, counts)


class TestGridRouting:
    @pytest.mark.parametrize("p", [4, 5, 7, 9, 12, 16, 20, 30])
    def test_intermediate_in_range_and_reachable(self, p):
        c, r = _grid_shape(p)
        T = _grid_intermediate(p)
        assert T.shape == (p, p)
        assert (T >= 0).all() and (T < p).all()
        i = np.arange(p)[:, None]
        # Phase 1 stays within the sender's grid column.
        assert ((T % c) == (i % c)).all()

    def test_cost_grid_beats_direct_at_scale(self):
        p = 256
        bufs = [np.zeros((p, 1), dtype=np.int64) for _ in range(p)]
        counts = [np.ones(p, dtype=np.int64) for _ in range(p)]
        md, mg = Machine(p), Machine(p)
        alltoallv_direct(Comm(md), bufs, counts)
        alltoallv_grid(Comm(mg), bufs, counts)
        assert mg.elapsed() < md.elapsed() / 2

    def test_grid_doubles_volume(self):
        p = 64
        bufs = [np.zeros((p, 1), dtype=np.int64) for _ in range(p)]
        counts = [np.ones(p, dtype=np.int64) for _ in range(p)]
        md, mg = Machine(p), Machine(p)
        alltoallv_direct(Comm(md), bufs, counts)
        alltoallv_grid(Comm(mg), bufs, counts)
        assert mg.bytes_communicated == pytest.approx(
            2 * md.bytes_communicated)


class TestAutoDispatch:
    def test_small_messages_take_grid(self):
        # Average bytes/message below the 500-byte threshold -> 2 exchanges.
        p = 16
        bufs = [np.zeros((p, 1), dtype=np.int64) for _ in range(p)]
        counts = [np.ones(p, dtype=np.int64) for _ in range(p)]
        m = Machine(p)
        alltoallv_auto(Comm(m), bufs, counts)
        assert m.n_collectives == 2  # the grid variant's two phases

    def test_large_messages_take_direct(self):
        p = 16
        rows = 2000  # 16 kB per message
        bufs = [np.zeros((rows * p, 1), dtype=np.int64) for _ in range(p)]
        counts = [np.full(p, rows, dtype=np.int64) for _ in range(p)]
        m = Machine(p)
        alltoallv_auto(Comm(m), bufs, counts)
        assert m.n_collectives == 1


class TestRouteRows:
    def test_request_reply_roundtrip(self, rng):
        p = 8
        comm = Comm(Machine(p))
        rows = [rng.integers(0, 100, (10, 2)) for _ in range(p)]
        dests = [rng.integers(0, p, 10) for _ in range(p)]
        recv, src, orders = route_rows(comm, rows, dests)
        replies = [r.sum(axis=1) for r in recv]
        back, _, _ = route_rows(comm, replies, src)
        for i in range(p):
            restored = unsort(orders[i], back[i])
            assert np.array_equal(restored, rows[i].sum(axis=1))

    def test_length_mismatch_rejected(self):
        comm = Comm(Machine(2))
        with pytest.raises(ValueError):
            route_rows(comm, [np.zeros((2, 1), dtype=np.int64),
                              np.zeros((0, 1), dtype=np.int64)],
                       [np.array([0]), np.empty(0, dtype=np.int64)])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 9), st.integers(0, 30), st.integers(1, 99))
    def test_conservation_property(self, p, k, seed):
        """Every row sent arrives exactly once, at the right PE."""
        rng = np.random.default_rng(seed)
        comm = Comm(Machine(p))
        rows = [rng.integers(0, 50, (k, 1)) for _ in range(p)]
        dests = [rng.integers(0, p, k) for _ in range(p)]
        recv, src, _ = route_rows(comm, rows, dests)
        assert sum(len(r) for r in recv) == p * k
        sent = sorted(np.concatenate([r[:, 0] for r in rows]).tolist())
        got = sorted(np.concatenate(
            [r[:, 0] for r in recv if len(r)]).tolist() if p * k else [])
        assert sent == got


@pytest.fixture
def rng():
    return np.random.default_rng(7)
